//! Scenario execution, the verdict oracle, and the campaign driver.
//!
//! [`run_scenario`] executes one [`Scenario`] on the real
//! [`ParallelExecutor`] / verifier / suspicion stack and checks the
//! outcome against [`oracle::check`]. [`run_campaign`] fans a whole
//! campaign across a [`ComputePool`] via `par_map`, whose join order is
//! a function of the scenario count only — so the fold into the
//! aggregate [`CampaignReport`](crate::CampaignReport) is deterministic
//! at every pool size.

use std::collections::{BTreeSet, HashMap};

use cbft_dataflow::interp::interpret;
use cbft_dataflow::Script;
use cbft_mapreduce::ComputePool;
use cbft_metrics::{names, HealthReport, Histogram, Metrics, SampleValue, Snapshot};
use clusterbft::{Behavior, ExecutorConfig, ParallelExecutor, ParallelOutcome, VpPolicy};
use serde::Serialize;

use crate::report::CampaignReport;
use crate::scenario::Scenario;

/// The campaign's script corpus: four shapes over one `(k, v)` input,
/// covering group/aggregate, filter/order/limit, self-join/distinct and
/// union — the operator mix of the paper's analysis scripts.
pub const SCRIPTS: [&str; 4] = [
    "a = LOAD 'in' AS (k, v);
     g = GROUP a BY k;
     c = FOREACH g GENERATE group, COUNT(a) AS n, SUM(a.v) AS s;
     STORE c INTO 'out';",
    "a = LOAD 'in' AS (k, v);
     f = FILTER a BY v % 3 == 0;
     g = GROUP f BY k;
     c = FOREACH g GENERATE group, MAX(f.v) AS m;
     o = ORDER c BY m DESC;
     t = LIMIT o 5;
     STORE t INTO 'out';",
    "a = LOAD 'in' AS (k, v);
     b = LOAD 'in' AS (k, v);
     j = JOIN a BY k, b BY k;
     p = FOREACH j GENERATE a::v AS x, b::v AS y;
     d = DISTINCT p;
     STORE d INTO 'out';",
    "a = LOAD 'in' AS (k, v);
     l = FOREACH a GENERATE k AS x;
     r = FOREACH a GENERATE v AS x;
     u = UNION l, r;
     g = GROUP u BY x;
     c = FOREACH g GENERATE group, COUNT(u) AS n;
     STORE c INTO 'out';",
];

/// A violation of the oracle: the run's verdict is inconsistent with
/// the injected fault plan.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Divergence {
    /// Stable rule name (see [`oracle`]).
    pub rule: &'static str,
    /// Human-readable account of the violation.
    pub detail: String,
}

/// Per-run knobs that are not part of the scenario itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOptions {
    /// Compute-pool threads inside the engine (task payloads).
    pub compute_threads: usize,
    /// Re-run each scenario on the inline pool and require the outcome
    /// and sim-domain metrics to serialize byte-identically.
    pub cross_check: bool,
    /// Fault injection *into the oracle path*: truncate the run's
    /// named-suspect set to its first element before checking, re-
    /// creating the pre-conflict-forensics bug class ("only the first
    /// injected replica is named"). Used to validate the shrinker and
    /// to pin counterexamples; never enabled in a real campaign.
    pub truncate_naming: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            compute_threads: 1,
            cross_check: false,
            truncate_naming: false,
        }
    }
}

/// Everything one scenario run produced, reduced to the deterministic
/// summary the aggregate report folds over.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Campaign index of the scenario.
    pub index: u64,
    /// The scenario itself.
    pub scenario: Scenario,
    /// Whether the run verified.
    pub verified: bool,
    /// Fresh replicas per escalation round.
    pub rounds: Vec<usize>,
    /// Replicas the forensics implicate (deviant ∪ omitted ∪ conflict),
    /// after any oracle fault injection.
    pub named: BTreeSet<usize>,
    /// Health-report suspects (mismatch/omission evidence only).
    pub suspects: Vec<u64>,
    /// Per-key report→quorum lags, merged over the run's keys (sim µs).
    pub detection_lag: Histogram,
    /// Oracle violations (empty on a conforming run).
    pub divergences: Vec<Divergence>,
}

impl ScenarioResult {
    /// Uids with an injected fault that were actually scheduled.
    pub fn injected_scheduled(&self) -> BTreeSet<usize> {
        let scheduled: usize = self.rounds.iter().sum();
        self.scenario
            .faults
            .iter()
            .map(|(uid, _)| *uid)
            .filter(|uid| *uid < scheduled)
            .collect()
    }
}

/// The oracle: what a run's verdict must look like, given its fault
/// plan. Each rule is conservative — it only claims what the protocol
/// guarantees, so a conforming build produces zero divergences over any
/// campaign.
pub mod oracle {
    use super::*;

    /// `suspects-not-injected`: with at most `f` commission faults no
    /// corrupt quorum can form, so every individually-implicated
    /// replica (digest mismatch or omission) must carry an injected
    /// fault. Honest replicas are never suspects.
    pub const FALSE_SUSPICION: &str = "suspects-not-injected";
    /// `crash-not-omitted`: a crashed replica that was scheduled never
    /// completes, so it must be in the omitted set.
    pub const MISSED_CRASH: &str = "crash-not-omitted";
    /// `fault-not-named`: a *deterministic* fault (crash, or commission
    /// with probability 1.0) on a scheduled replica must be named by
    /// the forensics — deviant, omitted or conflict party — whenever an
    /// honest replica was scheduled to contradict it and no corrupt
    /// quorum can exonerate it.
    pub const MISSED_NAMING: &str = "fault-not-named";
    /// `unverified-within-f`: with at most `f` injected faults the
    /// escalation ladder always reaches an honest `f+1` quorum.
    pub const UNVERIFIED: &str = "unverified-within-f";
    /// `verified-wrong-output`: a verified run with at most `f`
    /// commission faults must publish exactly the reference
    /// interpreter's outputs.
    pub const WRONG_OUTPUT: &str = "verified-wrong-output";
    /// `pool-divergence`: the outcome serialized differently on the
    /// inline pool (only checked under `cross_check`).
    pub const POOL_DIVERGENCE: &str = "pool-divergence";

    /// The fault bound every scenario runs under.
    pub const F: usize = 1;

    /// Checks one outcome against the scenario's fault plan. `named` is
    /// the forensics set (possibly truncated by the oracle fault
    /// injection); `suspects` the health report's individually-blamed
    /// replicas.
    pub fn check(
        scenario: &Scenario,
        outcome: &ParallelOutcome,
        named: &BTreeSet<usize>,
        suspects: &[u64],
    ) -> Vec<Divergence> {
        let mut out = Vec::new();
        let scheduled: usize = outcome.replicas_per_round().iter().sum();
        let injected: BTreeSet<usize> = scenario.faults.iter().map(|(uid, _)| *uid).collect();
        let commissions = scenario.commission_faults();
        let honest_scheduled = (0..scheduled).filter(|uid| !injected.contains(uid)).count();

        if commissions <= F {
            for s in suspects {
                if !injected.contains(&(*s as usize)) {
                    out.push(Divergence {
                        rule: FALSE_SUSPICION,
                        detail: format!("honest replica {s} named suspect"),
                    });
                }
            }
        }

        for (uid, behavior) in &scenario.faults {
            if *uid >= scheduled {
                continue; // never launched, cannot manifest
            }
            if matches!(behavior, Behavior::Crashed) && !outcome.omitted_replicas().contains(uid) {
                out.push(Divergence {
                    rule: MISSED_CRASH,
                    detail: format!("crashed replica {uid} not in omitted set"),
                });
            }
            let deterministic = match behavior {
                Behavior::Crashed => true,
                Behavior::Commission { probability } => *probability >= 1.0,
                _ => false,
            };
            if deterministic && commissions <= F && honest_scheduled >= 1 && !named.contains(uid) {
                out.push(Divergence {
                    rule: MISSED_NAMING,
                    detail: format!("deterministic fault on replica {uid} not named"),
                });
            }
        }

        if scenario.faults.len() <= F && !outcome.verified() {
            out.push(Divergence {
                rule: UNVERIFIED,
                detail: format!("{} fault(s) ≤ f, yet unverified", scenario.faults.len()),
            });
        }

        if outcome.verified() && commissions <= F {
            let plan = Script::parse(SCRIPTS[scenario.script])
                .expect("corpus scripts parse")
                .into_plan();
            let inputs = HashMap::from([("in".to_owned(), scenario.input())]);
            let reference = interpret(&plan, &inputs).expect("reference interpretation");
            for (name, truth) in reference.outputs() {
                let mut ours = outcome.output(name).unwrap_or_default().to_vec();
                let mut truth = truth.clone();
                ours.sort();
                truth.sort();
                if ours != truth {
                    out.push(Divergence {
                        rule: WRONG_OUTPUT,
                        detail: format!("verified output '{name}' differs from reference"),
                    });
                }
            }
        }
        out
    }
}

/// Executes the scenario once at the given pool size.
fn execute(scenario: &Scenario, compute_threads: usize, metrics: &Metrics) -> ParallelOutcome {
    let mut exec = ParallelExecutor::new(ExecutorConfig {
        threads: 1,
        compute_threads,
        expected_failures: oracle::F,
        escalation: scenario.escalation.clone(),
        vp_policy: VpPolicy::Marked(scenario.points),
        digest_granularity: scenario.granularity,
        map_split_records: scenario.map_split_records,
        master_seed: scenario.seed,
        ..ExecutorConfig::default()
    });
    exec.set_metrics(metrics.clone());
    exec.load_input("in", scenario.input())
        .expect("scenario input loads");
    for &(uid, behavior) in &scenario.faults {
        exec.inject_fault(uid, behavior);
    }
    exec.run_script(SCRIPTS[scenario.script])
        .expect("corpus scripts execute")
}

/// Merges every per-key verification-lag histogram in `snap`.
fn detection_lags(snap: &Snapshot) -> Histogram {
    let mut lag = Histogram::new();
    for s in &snap.samples {
        if s.name == names::VERIFICATION_LAG_US {
            if let SampleValue::Histogram(h) = &s.value {
                lag.merge(h);
            }
        }
    }
    lag
}

/// Runs one scenario and checks it against the oracle.
pub fn run_scenario(index: u64, scenario: &Scenario, opts: &RunOptions) -> ScenarioResult {
    let metrics = Metrics::new();
    let outcome = execute(scenario, opts.compute_threads, &metrics);
    let snap = metrics.snapshot().sim_only();
    let report = HealthReport::from_snapshot(&snap);

    let mut named = outcome.named_replicas();
    if opts.truncate_naming {
        // Oracle fault injection: drop every name after the first, the
        // pre-conflict-forensics bug class.
        let first = named.iter().next().copied();
        named = first.into_iter().collect();
    }

    let mut divergences = oracle::check(scenario, &outcome, &named, &report.suspect_replicas());

    if opts.cross_check && opts.compute_threads != 1 {
        let inline_metrics = Metrics::new();
        let inline = execute(scenario, 1, &inline_metrics);
        let pooled_json = serde_json::to_string(&outcome).expect("outcome serializes");
        let inline_json = serde_json::to_string(&inline).expect("outcome serializes");
        if pooled_json != inline_json
            || cbft_metrics::prometheus_text(&snap)
                != cbft_metrics::prometheus_text(&inline_metrics.snapshot().sim_only())
        {
            divergences.push(Divergence {
                rule: oracle::POOL_DIVERGENCE,
                detail: format!(
                    "outcome differs between compute pools of 1 and {}",
                    opts.compute_threads
                ),
            });
        }
    }

    ScenarioResult {
        index,
        scenario: scenario.clone(),
        verified: outcome.verified(),
        rounds: outcome.replicas_per_round().to_vec(),
        named,
        suspects: report.suspect_replicas(),
        detection_lag: detection_lags(&snap),
        divergences,
    }
}

/// A whole campaign: how many scenarios, from which seed, on how many
/// worker threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Campaign master seed (scenario `i` derives from it).
    pub seed: u64,
    /// Number of scenarios to run.
    pub scenarios: u64,
    /// Campaign worker threads (scenario fan-out; 0 = one per core).
    pub threads: usize,
    /// Per-run options.
    pub run: RunOptions,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            scenarios: 1000,
            threads: 1,
            run: RunOptions::default(),
        }
    }
}

/// Runs the campaign: generates scenario `0..scenarios`, executes them
/// across the pool, and folds the results — in index order — into the
/// aggregate report. The report (and every [`ScenarioResult`]) is
/// byte-identical for any `threads` / `compute_threads` combination.
pub fn run_campaign(config: &CampaignConfig) -> (CampaignReport, Vec<ScenarioResult>) {
    let pool = ComputePool::new(config.threads.max(1));
    let seed = config.seed;
    let run = config.run.clone();
    let results = pool.par_map(config.scenarios as usize, move |i| {
        let scenario = Scenario::generate(seed, i as u64);
        run_scenario(i as u64, &scenario, &run)
    });
    let report = CampaignReport::aggregate(config, &results);
    (report, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_scenario_conforms_and_verifies() {
        let scenario = Scenario {
            seed: 11,
            script: 0,
            records: 60,
            key_mod: 7,
            escalation: vec![2, 3, 4],
            points: 1,
            granularity: usize::MAX,
            map_split_records: 40,
            faults: Vec::new(),
        };
        let result = run_scenario(0, &scenario, &RunOptions::default());
        assert!(result.verified);
        assert!(result.divergences.is_empty(), "{:?}", result.divergences);
        assert!(result.named.is_empty());
        assert!(result.detection_lag.count() > 0, "lag keys were recorded");
    }

    #[test]
    fn a_single_crash_is_detected_and_conforms() {
        let scenario = Scenario {
            seed: 11,
            script: 0,
            records: 60,
            key_mod: 7,
            escalation: vec![2, 3, 4],
            points: 1,
            granularity: usize::MAX,
            map_split_records: 40,
            faults: vec![(0, Behavior::Crashed)],
        };
        let result = run_scenario(0, &scenario, &RunOptions::default());
        assert!(result.verified, "escalation recovers");
        assert!(result.divergences.is_empty(), "{:?}", result.divergences);
        assert!(result.named.contains(&0));
        assert_eq!(result.suspects, vec![0]);
    }

    #[test]
    fn truncated_naming_diverges_on_a_two_fault_scenario() {
        let scenario = Scenario {
            seed: 11,
            script: 0,
            records: 60,
            key_mod: 7,
            escalation: vec![2, 3, 4],
            points: 1,
            granularity: usize::MAX,
            map_split_records: 40,
            faults: vec![(0, Behavior::Crashed), (1, Behavior::Crashed)],
        };
        let honest = run_scenario(0, &scenario, &RunOptions::default());
        assert!(honest.divergences.is_empty(), "{:?}", honest.divergences);
        let truncated = run_scenario(
            0,
            &scenario,
            &RunOptions {
                truncate_naming: true,
                ..RunOptions::default()
            },
        );
        assert!(
            truncated
                .divergences
                .iter()
                .any(|d| d.rule == oracle::MISSED_NAMING),
            "dropping the second name must violate the naming rule"
        );
    }

    #[test]
    fn results_are_identical_across_pool_sizes() {
        let config = CampaignConfig {
            seed: 5,
            scenarios: 12,
            threads: 1,
            run: RunOptions::default(),
        };
        let (report_a, results_a) = run_campaign(&config);
        let wide = CampaignConfig {
            threads: 8,
            run: RunOptions {
                compute_threads: 4,
                ..RunOptions::default()
            },
            ..config.clone()
        };
        let (report_b, results_b) = run_campaign(&wide);
        assert_eq!(report_a.render(), report_b.render());
        for (a, b) in results_a.iter().zip(&results_b) {
            assert_eq!(a.verified, b.verified, "scenario {}", a.index);
            assert_eq!(a.named, b.named, "scenario {}", a.index);
            assert_eq!(a.divergences, b.divergences, "scenario {}", a.index);
        }
    }
}
