//! Deterministic counterexample minimization.
//!
//! When a scenario diverges from the oracle, [`shrink`] walks a fixed
//! candidate order — drop faults last-first, halve then decrement the
//! input, drop the last escalation rung, remove verification points,
//! coarsen the digest granularity, normalize the split size and script —
//! re-running each candidate standalone and keeping the first that
//! still reproduces, until no candidate does. The order is fixed and
//! every re-run is pure, so the same divergence always shrinks to the
//! same minimal scenario. [`Counterexample`] renders the result as a
//! ready-to-pin regression test.

use serde::Serialize;

use crate::runner::{run_scenario, Divergence, RunOptions};
use crate::scenario::Scenario;

/// Smallest input the shrinker will propose: enough records for every
/// script in the corpus to produce non-trivial output.
const MIN_RECORDS: usize = 8;

/// All single-step simplifications of `s`, in the fixed preference
/// order. Earlier candidates remove more of the scenario.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // 1. Drop one injected fault, last-first.
    for i in (0..s.faults.len()).rev() {
        let mut c = s.clone();
        c.faults.remove(i);
        out.push(c);
    }
    // 2. Shrink the input: halve, then decrement.
    let halved = (s.records / 2).max(MIN_RECORDS);
    if halved < s.records {
        let mut c = s.clone();
        c.records = halved;
        out.push(c);
    }
    if s.records > MIN_RECORDS {
        let mut c = s.clone();
        c.records = s.records - 1;
        out.push(c);
    }
    // 3. Drop the last escalation rung.
    if s.escalation.len() > 1 {
        let mut c = s.clone();
        c.escalation.pop();
        out.push(c);
    }
    // 4. Remove a verification point.
    if s.points > 0 {
        let mut c = s.clone();
        c.points -= 1;
        out.push(c);
    }
    // 5. Coarsen the digest granularity to one digest per task.
    if s.granularity != usize::MAX {
        let mut c = s.clone();
        c.granularity = usize::MAX;
        out.push(c);
    }
    // 6. Normalize the map split.
    if s.map_split_records != 64 {
        let mut c = s.clone();
        c.map_split_records = 64;
        out.push(c);
    }
    // 7. Normalize to the first corpus script.
    if s.script != 0 {
        let mut c = s.clone();
        c.script = 0;
        out.push(c);
    }
    out
}

/// Minimizes `scenario` while `reproduces` holds, returning the shrunk
/// scenario and the number of accepted shrink steps. Greedy first-fit
/// over [`candidates`] until fixpoint; deterministic because both the
/// candidate order and `reproduces` (a standalone scenario run) are.
pub fn shrink<F: Fn(&Scenario) -> bool>(scenario: &Scenario, reproduces: F) -> (Scenario, usize) {
    let mut current = scenario.clone();
    let mut steps = 0;
    'outer: loop {
        for candidate in candidates(&current) {
            if reproduces(&candidate) {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        return (current, steps);
    }
}

/// A shrunk oracle divergence, ready to pin as a regression test.
#[derive(Clone, Debug, Serialize)]
pub struct Counterexample {
    /// Seed of the campaign that surfaced the divergence.
    pub campaign_seed: u64,
    /// Index of the diverging scenario within that campaign.
    pub index: u64,
    /// The scenario as the campaign generated it.
    pub original: Scenario,
    /// The minimal scenario that still diverges.
    pub shrunk: Scenario,
    /// Accepted shrink steps between the two.
    pub steps: usize,
    /// The divergences the shrunk scenario still produces.
    pub divergences: Vec<Divergence>,
    /// Whether the run used the oracle fault injection
    /// (`truncate_naming`); recorded so the pinned test replays the
    /// same conditions.
    pub truncate_naming: bool,
}

impl Counterexample {
    /// Shrinks the diverging `scenario` under `opts` and packages the
    /// result. The caller must have observed a divergence already; if
    /// the scenario does not reproduce, the "shrunk" form is the
    /// original.
    pub fn minimize(
        campaign_seed: u64,
        index: u64,
        scenario: &Scenario,
        opts: &RunOptions,
    ) -> Counterexample {
        let standalone = RunOptions {
            compute_threads: 1,
            cross_check: opts.cross_check,
            truncate_naming: opts.truncate_naming,
        };
        let (shrunk, steps) = shrink(scenario, |s| {
            !run_scenario(index, s, &standalone).divergences.is_empty()
        });
        let divergences = run_scenario(index, &shrunk, &standalone).divergences;
        Counterexample {
            campaign_seed,
            index,
            original: scenario.clone(),
            shrunk,
            steps,
            divergences,
            truncate_naming: opts.truncate_naming,
        }
    }

    /// Renders a self-contained `#[test]` that replays the shrunk
    /// scenario and asserts it still diverges — paste into
    /// `tests/campaign.rs` (or any crate depending on `cbft-campaign`)
    /// to pin the bug.
    pub fn to_regression_test(&self) -> String {
        let rules: Vec<&str> = self.divergences.iter().map(|d| d.rule).collect();
        format!(
            "/// Pinned by the campaign shrinker: campaign seed {seed:#x},\n\
             /// scenario {index}, shrunk in {steps} step(s). Violates: {rules}.\n\
             #[test]\n\
             fn campaign_counterexample_seed_{seed:x}_scenario_{index}() {{\n\
             \x20   use cbft_campaign::{{run_scenario, RunOptions, Scenario}};\n\
             \x20   #[allow(unused_imports)]\n\
             \x20   use clusterbft::Behavior;\n\
             \n\
             \x20   let scenario = {literal};\n\
             \x20   let opts = RunOptions {{\n\
             \x20       compute_threads: 1,\n\
             \x20       cross_check: false,\n\
             \x20       truncate_naming: {truncate},\n\
             \x20   }};\n\
             \x20   let result = run_scenario({index}, &scenario, &opts);\n\
             \x20   assert!(\n\
             \x20       !result.divergences.is_empty(),\n\
             \x20       \"pinned counterexample no longer diverges — bug fixed? remove this test\"\n\
             \x20   );\n\
             }}\n",
            seed = self.campaign_seed,
            index = self.index,
            steps = self.steps,
            rules = rules.join(", "),
            literal = self.shrunk.to_rust_literal(),
            truncate = self.truncate_naming,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clusterbft::Behavior;

    fn truncating() -> RunOptions {
        RunOptions {
            truncate_naming: true,
            ..RunOptions::default()
        }
    }

    fn diverges(s: &Scenario, opts: &RunOptions) -> bool {
        !run_scenario(0, s, opts).divergences.is_empty()
    }

    /// A deliberately-bloated scenario whose divergence (under the
    /// naming-truncation fault injection) only needs two crashes.
    fn bloated() -> Scenario {
        Scenario {
            seed: 0x2a,
            script: 2,
            records: 120,
            key_mod: 9,
            escalation: vec![2, 3, 4],
            points: 3,
            granularity: 7,
            map_split_records: 33,
            faults: vec![(0, Behavior::Crashed), (1, Behavior::Crashed)],
        }
    }

    #[test]
    fn the_shrinker_reaches_a_minimal_fixpoint() {
        let opts = truncating();
        assert!(diverges(&bloated(), &opts), "premise: bloated diverges");
        let (shrunk, steps) = shrink(&bloated(), |s| diverges(s, &opts));
        assert!(steps > 0, "at least one simplification lands");
        assert!(diverges(&shrunk, &opts), "shrunk still reproduces");
        assert!(shrunk.records <= bloated().records);
        assert_eq!(shrunk.faults.len(), 2, "both crashes are load-bearing");
        // Fixpoint: a second pass finds nothing more to remove.
        let (again, more) = shrink(&shrunk, |s| diverges(s, &opts));
        assert_eq!(more, 0);
        assert_eq!(again, shrunk);
    }

    #[test]
    fn minimize_packages_a_replayable_counterexample() {
        let ce = Counterexample::minimize(0x2a, 0, &bloated(), &truncating());
        assert!(!ce.divergences.is_empty());
        assert!(ce.steps > 0);
        // Standalone replay of the shrunk scenario, from scratch.
        assert!(diverges(&ce.shrunk, &truncating()));
        let test = ce.to_regression_test();
        assert!(test.contains("#[test]"));
        assert!(test.contains("truncate_naming: true"));
        assert!(test.contains("Behavior::Crashed"));
    }

    /// Pinned shrunk counterexample #1 (two crashes, naming truncated):
    /// the minimal form the shrinker converges to from [`bloated`].
    #[test]
    fn pinned_counterexample_two_crashes_truncated_naming() {
        let scenario = Scenario {
            seed: 0x2a,
            script: 0,
            records: 8,
            key_mod: 9,
            escalation: vec![2, 3],
            points: 0,
            granularity: usize::MAX,
            map_split_records: 64,
            faults: vec![(0, Behavior::Crashed), (1, Behavior::Crashed)],
        };
        let opts = truncating();
        let result = run_scenario(0, &scenario, &opts);
        assert!(
            result
                .divergences
                .iter()
                .any(|d| d.rule == crate::oracle::MISSED_NAMING),
            "dropping the second crash's name must trip the naming rule: {:?}",
            result.divergences
        );
        let (again, more) = shrink(&scenario, |s| diverges(s, &opts));
        assert_eq!(more, 0, "pinned case is a shrink fixpoint");
        assert_eq!(again, scenario);
    }

    /// Pinned shrunk counterexample #2 (commission + crash, naming
    /// truncated): exercises the deviant-plus-omitted naming path.
    #[test]
    fn pinned_counterexample_commission_and_crash_truncated_naming() {
        let scenario = Scenario {
            seed: 0x2a,
            script: 0,
            records: 8,
            key_mod: 5,
            escalation: vec![4],
            points: 0,
            granularity: usize::MAX,
            map_split_records: 64,
            faults: vec![
                (0, Behavior::Commission { probability: 1.0 }),
                (1, Behavior::Crashed),
            ],
        };
        let opts = truncating();
        let result = run_scenario(0, &scenario, &opts);
        assert!(
            result
                .divergences
                .iter()
                .any(|d| d.rule == crate::oracle::MISSED_NAMING),
            "truncated naming must miss one of the two faults: {:?}",
            result.divergences
        );
        let (again, more) = shrink(&scenario, |s| diverges(s, &opts));
        assert_eq!(more, 0, "pinned case is a shrink fixpoint");
        assert_eq!(again, scenario);
    }
}
