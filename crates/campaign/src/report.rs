//! The aggregate campaign report.
//!
//! Everything in the report is a fold over [`ScenarioResult`]s in index
//! order, built from commutative pieces (counters, histogram merges,
//! suspicion tallies) — so the rendering is byte-identical however the
//! campaign was threaded. No wall-clock material ever enters it.

use std::collections::BTreeMap;

use cbft_metrics::{names, prometheus_text, Domain, Histogram, Metrics};
use clusterbft::{NodeId, SuspicionTable};

use crate::runner::{CampaignConfig, ScenarioResult};

/// Deterministic summary of a whole campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign seed the report derives from.
    pub seed: u64,
    /// Scenarios executed.
    pub scenarios: u64,
    /// Scenarios whose run verified.
    pub verified: u64,
    /// Total injected faults across the campaign.
    pub faults_injected: u64,
    /// Honest replicas blamed as suspects (oracle rule violations).
    pub false_suspicions: u64,
    /// Merged per-key report→quorum lag over every scenario (sim µs).
    pub detection_lag: Histogram,
    /// Scenario count by escalation-round count.
    pub escalation_rounds: BTreeMap<usize, u64>,
    /// Scenario count, by round count, where forensics converged: the
    /// named set equals exactly the scheduled injected faults.
    pub converged: BTreeMap<usize, u64>,
    /// Suspicion-band population after replaying every scenario's
    /// job/fault record into one campaign-wide table (replica uid =
    /// node id).
    pub suspicion_bands: BTreeMap<&'static str, usize>,
    /// Divergence count per oracle rule.
    pub divergence_rules: BTreeMap<&'static str, u64>,
    /// Indices of diverging scenarios, ascending.
    pub divergent: Vec<u64>,
}

impl CampaignReport {
    /// Folds per-scenario results (in index order) into the report.
    pub fn aggregate(config: &CampaignConfig, results: &[ScenarioResult]) -> CampaignReport {
        let mut report = CampaignReport {
            seed: config.seed,
            scenarios: results.len() as u64,
            verified: 0,
            faults_injected: 0,
            false_suspicions: 0,
            detection_lag: Histogram::new(),
            escalation_rounds: BTreeMap::new(),
            converged: BTreeMap::new(),
            suspicion_bands: BTreeMap::new(),
            divergence_rules: BTreeMap::new(),
            divergent: Vec::new(),
        };
        let mut suspicion = SuspicionTable::new();
        for r in results {
            if r.verified {
                report.verified += 1;
            }
            report.faults_injected += r.scenario.faults.len() as u64;
            report.detection_lag.merge(&r.detection_lag);
            let rounds = r.rounds.len();
            *report.escalation_rounds.entry(rounds).or_default() += 1;
            if r.named == r.injected_scheduled() {
                *report.converged.entry(rounds).or_default() += 1;
            }
            let scheduled: usize = r.rounds.iter().sum();
            suspicion.record_jobs((0..scheduled).map(NodeId));
            suspicion.record_faults(r.named.iter().copied().map(NodeId));
            for d in &r.divergences {
                *report.divergence_rules.entry(d.rule).or_default() += 1;
                if d.rule == crate::oracle::FALSE_SUSPICION {
                    report.false_suspicions += 1;
                }
            }
            if !r.divergences.is_empty() {
                report.divergent.push(r.index);
            }
        }
        report.suspicion_bands = suspicion
            .band_counts()
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .collect();
        report
    }

    /// Total oracle divergences across all rules.
    pub fn divergences(&self) -> u64 {
        self.divergence_rules.values().sum()
    }

    /// Re-expresses the report as a `cbft-metrics` registry, so the
    /// campaign exports through the same Prometheus/JSON pipeline as
    /// the engine itself.
    pub fn to_metrics(&self) -> Metrics {
        let m = Metrics::new();
        m.add(Domain::Sim, names::CAMPAIGN_SCENARIOS, &[], self.scenarios);
        m.add(Domain::Sim, names::CAMPAIGN_VERIFIED, &[], self.verified);
        m.add(
            Domain::Sim,
            names::CAMPAIGN_FAULTS_INJECTED,
            &[],
            self.faults_injected,
        );
        m.add(
            Domain::Sim,
            names::CAMPAIGN_FALSE_SUSPICIONS,
            &[],
            self.false_suspicions,
        );
        m.observe_hist(
            Domain::Sim,
            names::CAMPAIGN_DETECTION_LAG_US,
            &[],
            &self.detection_lag,
        );
        for (&rounds, &n) in &self.escalation_rounds {
            m.add(
                Domain::Sim,
                names::CAMPAIGN_ESCALATION_ROUNDS,
                &[("rounds", rounds.into())],
                n,
            );
        }
        for (&rounds, &n) in &self.converged {
            m.add(
                Domain::Sim,
                names::CAMPAIGN_CONVERGED,
                &[("rounds", rounds.into())],
                n,
            );
        }
        for (&band, &n) in &self.suspicion_bands {
            m.add(
                Domain::Sim,
                names::CAMPAIGN_SUSPICION_BAND,
                &[("band", band.into())],
                n as u64,
            );
        }
        for (&rule, &n) in &self.divergence_rules {
            m.add(
                Domain::Sim,
                names::CAMPAIGN_DIVERGENCES,
                &[("rule", rule.into())],
                n,
            );
        }
        m
    }

    /// Renders the human-readable report followed by the Prometheus
    /// exposition. Byte-identical across thread counts: every line is a
    /// function of the result fold only.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# ClusterBFT chaos campaign report\n");
        out.push_str(&format!("seed: {:#x}\n", self.seed));
        out.push_str(&format!(
            "scenarios: {}  verified: {}  faults injected: {}\n",
            self.scenarios, self.verified, self.faults_injected
        ));
        let (p50, p90, p99) = self.detection_lag.p50_p90_p99();
        out.push_str(&format!(
            "detection lag (sim us): keys={}  p50={}  p90={}  p99={}  max={}\n",
            self.detection_lag.count(),
            p50,
            p90,
            p99,
            self.detection_lag.max()
        ));
        out.push_str("escalation rounds:\n");
        for (rounds, n) in &self.escalation_rounds {
            let converged = self.converged.get(rounds).copied().unwrap_or(0);
            out.push_str(&format!(
                "  {rounds} round(s): {n} scenario(s), {converged} forensically converged\n"
            ));
        }
        out.push_str("campaign suspicion bands:\n");
        for (band, n) in &self.suspicion_bands {
            out.push_str(&format!("  {band}: {n} replica slot(s)\n"));
        }
        out.push_str(&format!(
            "false suspicions: {}\ndivergences: {}\n",
            self.false_suspicions,
            self.divergences()
        ));
        for (rule, n) in &self.divergence_rules {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
        if !self.divergent.is_empty() {
            let shown: Vec<String> = self.divergent.iter().take(20).map(u64::to_string).collect();
            out.push_str(&format!(
                "divergent scenario indices (first 20): {}\n",
                shown.join(", ")
            ));
        }
        out.push('\n');
        out.push_str(&prometheus_text(&self.to_metrics().snapshot()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scenario, RunOptions};
    use crate::Scenario;

    #[test]
    fn the_report_rendering_is_deterministic_and_exports_campaign_metrics() {
        let config = CampaignConfig {
            seed: 3,
            scenarios: 6,
            ..CampaignConfig::default()
        };
        let results: Vec<_> = (0..config.scenarios)
            .map(|i| {
                run_scenario(
                    i,
                    &Scenario::generate(config.seed, i),
                    &RunOptions::default(),
                )
            })
            .collect();
        let a = CampaignReport::aggregate(&config, &results).render();
        let b = CampaignReport::aggregate(&config, &results).render();
        assert_eq!(a, b);
        assert!(a.contains("cbft_campaign_scenarios_total{domain=\"sim\"} 6"));
        assert!(a.contains("escalation rounds:"));
    }
}
