//! The seeded scenario grammar.
//!
//! A [`Scenario`] is everything one chaos run needs: the script, the
//! input shape, the escalation schedule (the `r` sweep), the digest
//! granularity `d`, the verification-point count, and the fault plan.
//! Generation is a pure function of `(campaign_seed, index)`; execution
//! is a pure function of the scenario. Both facts together are what let
//! the aggregate report be byte-identical at any thread count — and
//! what let the shrinker re-run mutated scenarios standalone.

use cbft_faultsim::FaultMix;
use cbft_sim::SeedSpawner;
use clusterbft::{Behavior, Record, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::runner::SCRIPTS;

/// One fully-specified chaos run, derived from a seed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed handed to the engine (`ExecutorConfig::master_seed`).
    pub seed: u64,
    /// Index into [`SCRIPTS`].
    pub script: usize,
    /// Input records generated for the run.
    pub records: usize,
    /// Modulus of the record key column (controls group fan-in).
    pub key_mod: i64,
    /// Escalation schedule: cumulative replica targets per round. A
    /// suffix of the paper's `f+1 → 2f+1 → 3f+1` ladder, so the first
    /// entry is the swept initial replication degree `r`.
    pub escalation: Vec<usize>,
    /// Marker-chosen verification points.
    pub points: u32,
    /// Digest granularity `d` (records per digest chunk).
    pub granularity: usize,
    /// Map-task input split size.
    pub map_split_records: usize,
    /// Injected faults, `(replica uid, behavior)`, ascending by uid.
    pub faults: Vec<(usize, Behavior)>,
}

impl Scenario {
    /// Derives scenario `index` of the campaign rooted at
    /// `campaign_seed`. Pure: the same pair always yields the same
    /// scenario, independent of every other scenario and of any thread
    /// count.
    pub fn generate(campaign_seed: u64, index: u64) -> Scenario {
        let seed = SeedSpawner::new(campaign_seed).seed("scenario", index);
        let mut rng = StdRng::seed_from_u64(seed);

        let script = rng.gen_range(0..SCRIPTS.len());
        let records = rng.gen_range(24..=160);
        let key_mod = rng.gen_range(5..=16);
        // The r sweep: start the ladder at f+1, 2f+1 or 3f+1.
        let escalation = match rng.gen_range(0..3u32) {
            0 => vec![2, 3, 4],
            1 => vec![3, 4],
            _ => vec![4],
        };
        let points = rng.gen_range(0..=3u32);
        let granularity = [usize::MAX, 50, 7][rng.gen_range(0..3usize)];
        let map_split_records = rng.gen_range(20..80);

        // Fault plan: mostly ≤ f faults (the regime the paper's
        // guarantee covers), with a tail of 2–3 fault scenarios that
        // exercise exhaustion, conflict forensics and the collusion
        // boundary. Uids are drawn without replacement from the full
        // ladder, so some faults only manifest if escalation reaches
        // their round.
        let n_faults = match rng.gen_range(0..10u32) {
            0 => 0,
            1..=5 => 1,
            6..=8 => 2,
            _ => 3,
        };
        let mut uids: Vec<usize> = (0..4).collect();
        uids.shuffle(&mut rng);
        let mut uids: Vec<usize> = uids.into_iter().take(n_faults).collect();
        uids.sort_unstable();
        let faults = uids
            .into_iter()
            .map(|uid| (uid, FaultMix::UNIFORM.draw(&mut rng)))
            .collect();

        Scenario {
            seed,
            script,
            records,
            key_mod,
            escalation,
            points,
            granularity,
            map_split_records,
            faults,
        }
    }

    /// The deterministic input table for this scenario.
    pub fn input(&self) -> Vec<Record> {
        (0..self.records as i64)
            .map(|i| Record::new(vec![Value::Int(i % self.key_mod), Value::Int(i * 7 % 101)]))
            .collect()
    }

    /// Number of commission faults in the plan (any probability). Two or
    /// more can collude: corruption is a deterministic function of the
    /// record, so replicas that corrupt the same tasks produce identical
    /// wrong digests and — beyond `f` of them — can fake a quorum.
    pub fn commission_faults(&self) -> usize {
        self.faults
            .iter()
            .filter(|(_, b)| matches!(b, Behavior::Commission { .. }))
            .count()
    }

    /// Renders the scenario as a Rust expression, for ready-to-pin
    /// regression tests emitted by the shrinker.
    pub fn to_rust_literal(&self) -> String {
        let faults: Vec<String> = self
            .faults
            .iter()
            .map(|(uid, b)| {
                let b = match b {
                    Behavior::Honest => "Behavior::Honest".to_owned(),
                    Behavior::Crashed => "Behavior::Crashed".to_owned(),
                    Behavior::Commission { probability } => {
                        format!("Behavior::Commission {{ probability: {probability:?} }}")
                    }
                    Behavior::Omission { probability } => {
                        format!("Behavior::Omission {{ probability: {probability:?} }}")
                    }
                };
                format!("({uid}, {b})")
            })
            .collect();
        let granularity = if self.granularity == usize::MAX {
            "usize::MAX".to_owned()
        } else {
            self.granularity.to_string()
        };
        format!(
            "Scenario {{\n        seed: {seed:#x},\n        script: {script},\n        records: {records},\n        key_mod: {key_mod},\n        escalation: vec!{escalation:?},\n        points: {points},\n        granularity: {granularity},\n        map_split_records: {msr},\n        faults: vec![{faults}],\n    }}",
            seed = self.seed,
            script = self.script,
            records = self.records,
            key_mod = self.key_mod,
            escalation = self.escalation,
            points = self.points,
            msr = self.map_split_records,
            faults = faults.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        for index in 0..50u64 {
            let a = Scenario::generate(42, index);
            let b = Scenario::generate(42, index);
            assert_eq!(a, b);
        }
        assert_ne!(Scenario::generate(42, 0), Scenario::generate(42, 1));
        assert_ne!(Scenario::generate(42, 0), Scenario::generate(43, 0));
    }

    #[test]
    fn the_sweep_covers_the_advertised_dimensions() {
        let scenarios: Vec<Scenario> = (0..300).map(|i| Scenario::generate(7, i)).collect();
        let rs: std::collections::BTreeSet<usize> =
            scenarios.iter().map(|s| s.escalation[0]).collect();
        assert_eq!(rs, [2, 3, 4].into(), "r sweep");
        let ds: std::collections::BTreeSet<usize> =
            scenarios.iter().map(|s| s.granularity).collect();
        assert_eq!(ds.len(), 3, "granularity sweep");
        let points: std::collections::BTreeSet<u32> = scenarios.iter().map(|s| s.points).collect();
        assert_eq!(points, [0, 1, 2, 3].into(), "verification-point sweep");
        let fault_counts: std::collections::BTreeSet<usize> =
            scenarios.iter().map(|s| s.faults.len()).collect();
        assert_eq!(fault_counts, [0, 1, 2, 3].into(), "fault-count sweep");
        assert!(
            scenarios.iter().flat_map(|s| &s.faults).any(
                |(_, b)| matches!(b, Behavior::Commission { probability } if *probability >= 1.0)
            ),
            "colluding commissions appear in the mix"
        );
        assert!(
            scenarios
                .iter()
                .flat_map(|s| &s.faults)
                .any(|(_, b)| matches!(b, Behavior::Crashed)),
            "crashes appear in the mix"
        );
    }

    #[test]
    fn rust_literal_round_trips_the_shape() {
        let s = Scenario::generate(9, 3);
        let lit = s.to_rust_literal();
        assert!(lit.contains("seed:"));
        assert!(lit.contains("escalation: vec!"));
    }
}
