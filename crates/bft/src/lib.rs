//! PBFT-style Byzantine fault tolerant state machine replication.
//!
//! §6.4 of the ClusterBFT paper drops the assumption of an implicitly
//! trusted control tier and replicates the request handler `3f + 1`-fold
//! using BFT-SMaRt. This crate is the reproduction's BFT-SMaRt substitute:
//! a from-scratch implementation of the PBFT normal case
//! (pre-prepare / prepare / commit) plus a simplified—but safe—view change,
//! running over a simulated network.
//!
//! * [`StateMachine`] — the replicated application (deterministic).
//! * [`Replica`] — the protocol state machine; pure message-in/actions-out,
//!   so protocol logic is directly unit-testable.
//! * [`BftCluster`] — harness wiring `n = 3f + 1` replicas and clients
//!   through a latency/drop-simulating network with a virtual clock.
//! * [`BftBehavior`] — fault injection: crashed replicas and equivocating
//!   primaries.
//!
//! # Safety argument (tested, not just stated)
//!
//! Committing requires `2f + 1` matching `COMMIT`s; any two quorums
//! intersect in at least one honest replica, so no two honest replicas
//! ever execute different operations at the same sequence number. The
//! property tests drive random drops, crashes and view changes and assert
//! exactly this prefix-consistency invariant.
//!
//! # Examples
//!
//! ```
//! use cbft_bft::{BftCluster, KvStore};
//!
//! let mut cluster = BftCluster::new(1, KvStore::default(), 7); // f = 1 → 4 replicas
//! let req = cluster.submit(b"put k v".to_vec());
//! let reply = cluster.run_until_reply(req).expect("commits");
//! assert_eq!(reply, b"ok".to_vec());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod message;
mod replica;

pub use cluster::{BftCluster, BftMetrics, RequestId};
pub use message::{Message, ReplicaId, Request};
pub use replica::{Action, BftBehavior, Replica, StateMachine, TimerId};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A tiny deterministic key-value store — the canonical [`StateMachine`]
/// for tests, examples and benches.
///
/// Operations: `put <key> <value>` → `ok`; `get <key>` → the value or
/// `none`; anything else → `err`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvStore {
    entries: BTreeMap<String, String>,
}

impl StateMachine for KvStore {
    fn apply(&mut self, op: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(op);
        let mut parts = text.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("put"), Some(k), Some(v)) => {
                self.entries.insert(k.to_owned(), v.to_owned());
                b"ok".to_vec()
            }
            (Some("get"), Some(k), None) => self
                .entries
                .get(k)
                .map(|v| v.as_bytes().to_vec())
                .unwrap_or_else(|| b"none".to_vec()),
            _ => b"err".to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_store_semantics() {
        let mut kv = KvStore::default();
        assert_eq!(kv.apply(b"get a"), b"none");
        assert_eq!(kv.apply(b"put a 1"), b"ok");
        assert_eq!(kv.apply(b"get a"), b"1");
        assert_eq!(kv.apply(b"nonsense"), b"err");
    }
}
