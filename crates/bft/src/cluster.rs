//! Simulated-network harness for a PBFT replica group.

use std::collections::{BTreeMap, HashMap};

use cbft_sim::{EventQueue, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::message::{Message, ReplicaId, Request};
use crate::replica::{Action, BftBehavior, Replica, StateMachine, TimerId};

/// Identifies a submitted request for [`BftCluster::run_until_reply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RequestId {
    client: u64,
    timestamp: u64,
}

/// Aggregate protocol metrics — the ablation benches report these to
/// contrast per-job BFT (n×m consensus) with ClusterBFT's single
/// verification round.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BftMetrics {
    /// Total protocol messages sent.
    pub messages: u64,
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Message counts by kind.
    pub by_kind: BTreeMap<String, u64>,
    /// `NEW-VIEW` installations observed.
    pub view_changes: u64,
}

#[derive(Debug)]
enum NetEvent {
    Deliver {
        to: ReplicaId,
        from: ReplicaId,
        msg: Message,
    },
    Timer {
        replica: ReplicaId,
        id: TimerId,
    },
}

/// A group of `n = 3f + 1` replicas plus a client, over a simulated
/// network with latency, jitter and message drops.
///
/// # Examples
///
/// ```
/// use cbft_bft::{BftBehavior, BftCluster, KvStore, ReplicaId};
///
/// let mut cluster = BftCluster::new(1, KvStore::default(), 42);
/// cluster.set_behavior(ReplicaId(0), BftBehavior::Crashed); // kill the primary
/// let req = cluster.submit(b"put a 1".to_vec());
/// assert_eq!(cluster.run_until_reply(req), Some(b"ok".to_vec()));
/// ```
pub struct BftCluster<S> {
    replicas: Vec<Replica<S>>,
    queue: EventQueue<NetEvent>,
    rng: StdRng,
    latency: SimDuration,
    drop_probability: f64,
    replies: HashMap<(u64, u64), BTreeMap<ReplicaId, Vec<u8>>>,
    submitted_ops: HashMap<(u64, u64), Vec<u8>>,
    metrics: BftMetrics,
    f: usize,
    next_timestamp: u64,
    client: u64,
    /// Replicas currently partitioned away (tests of catch-up paths).
    links_down: Vec<bool>,
}

impl<S: StateMachine + Clone> BftCluster<S> {
    /// Creates a cluster of `3f + 1` replicas, each starting from a clone
    /// of `initial_state`.
    pub fn new(f: usize, initial_state: S, seed: u64) -> Self {
        let n = 3 * f + 1;
        BftCluster {
            replicas: (0..n)
                .map(|i| Replica::new(ReplicaId(i), n, initial_state.clone()))
                .collect(),
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            latency: SimDuration::from_millis(5),
            drop_probability: 0.0,
            replies: HashMap::new(),
            submitted_ops: HashMap::new(),
            metrics: BftMetrics::default(),
            f,
            next_timestamp: 1,
            client: 100,
            links_down: vec![false; n],
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> usize {
        self.f
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Protocol metrics so far.
    pub fn metrics(&self) -> &BftMetrics {
        &self.metrics
    }

    /// Sets one-way network latency (default 5 ms).
    pub fn set_latency(&mut self, latency: SimDuration) {
        self.latency = latency;
    }

    /// Sets the probability that any replica-to-replica message is lost.
    pub fn set_drop_probability(&mut self, p: f64) {
        self.drop_probability = p.clamp(0.0, 1.0);
    }

    /// Sets a replica's fault behaviour.
    pub fn set_behavior(&mut self, id: ReplicaId, behavior: BftBehavior) {
        self.replicas[id.0].set_behavior(behavior);
    }

    /// Partitions a replica away from (or back onto) the network: while
    /// down, every message to or from it is dropped. Used to exercise the
    /// checkpoint-based catch-up path.
    pub fn set_link_down(&mut self, id: ReplicaId, down: bool) {
        self.links_down[id.0] = down;
    }

    /// Sets every replica's checkpoint interval.
    pub fn set_checkpoint_interval(&mut self, interval: u64) {
        for r in &mut self.replicas {
            r.set_checkpoint_interval(interval);
        }
    }

    /// Read access to a replica (state, view, executed log).
    pub fn replica(&self, id: ReplicaId) -> &Replica<S> {
        &self.replicas[id.0]
    }

    /// Submits an operation: the client broadcasts it to every replica.
    pub fn submit(&mut self, op: Vec<u8>) -> RequestId {
        let timestamp = self.next_timestamp;
        self.next_timestamp += 1;
        let req = Request::new(self.client, timestamp, op);
        self.submitted_ops
            .insert((self.client, timestamp), req.op.clone());
        self.broadcast_request(&req);
        RequestId {
            client: self.client,
            timestamp,
        }
    }

    fn broadcast_request(&mut self, req: &Request) {
        let at = self.queue.now() + self.latency;
        for i in 0..self.replicas.len() {
            if self.links_down[i] {
                continue;
            }
            self.metrics.messages += 1;
            self.metrics.bytes += Message::Request(req.clone()).wire_size();
            *self
                .metrics
                .by_kind
                .entry("request".to_owned())
                .or_default() += 1;
            self.queue.schedule(
                at,
                NetEvent::Deliver {
                    to: ReplicaId(i),
                    from: ReplicaId(self.replicas.len()), // the client
                    msg: Message::Request(req.clone()),
                },
            );
        }
    }

    /// Runs the network until `f + 1` matching replies for `req` arrive,
    /// re-transmitting a few times on quiescence (lost messages, crashed
    /// primaries). Returns `None` when the request cannot commit — e.g.
    /// more than `f` replicas are faulty.
    pub fn run_until_reply(&mut self, req: RequestId) -> Option<Vec<u8>> {
        const MAX_RETRANSMITS: usize = 8;
        const MAX_EVENTS: u64 = 2_000_000;
        let mut processed = 0u64;
        let mut retransmits = 0;
        loop {
            while let Some(ev) = self.queue.pop() {
                self.dispatch(ev.event);
                processed += 1;
                if let Some(result) = self.quorum_reply(req) {
                    return Some(result);
                }
                if processed > MAX_EVENTS {
                    return None;
                }
            }
            if let Some(result) = self.quorum_reply(req) {
                return Some(result);
            }
            if retransmits >= MAX_RETRANSMITS {
                return None;
            }
            retransmits += 1;
            // The client re-transmits; any replica that executed replies
            // from cache, others re-arm progress timers.
            let original = Request::new(req.client, req.timestamp, self.reconstruct_op(req)?);
            self.broadcast_request(&original);
        }
    }

    /// Drains all pending events without waiting for any particular reply.
    pub fn run_to_quiescence(&mut self) {
        while let Some(ev) = self.queue.pop() {
            self.dispatch(ev.event);
        }
    }

    fn quorum_reply(&self, req: RequestId) -> Option<Vec<u8>> {
        let votes = self.replies.get(&(req.client, req.timestamp))?;
        let mut counts: HashMap<&[u8], usize> = HashMap::new();
        for result in votes.values() {
            *counts.entry(result.as_slice()).or_default() += 1;
        }
        counts
            .into_iter()
            .find(|(_, c)| *c > self.f)
            .map(|(r, _)| r.to_vec())
    }

    fn reconstruct_op(&self, req: RequestId) -> Option<Vec<u8>> {
        self.submitted_ops
            .get(&(req.client, req.timestamp))
            .cloned()
    }

    fn dispatch(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::Deliver { to, from, msg } => {
                let mut out = Vec::new();
                self.replicas[to.0].on_message(from, msg, &mut out);
                self.perform(to, out);
            }
            NetEvent::Timer { replica, id } => {
                let mut out = Vec::new();
                self.replicas[replica.0].on_timer(id, &mut out);
                self.perform(replica, out);
            }
        }
    }

    fn perform(&mut self, from: ReplicaId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send(to, msg) => self.send(from, to, msg),
                Action::Broadcast(msg) => {
                    if let Message::NewView { .. } = msg {
                        self.metrics.view_changes += 1;
                    }
                    for i in 0..self.replicas.len() {
                        if i != from.0 {
                            self.send(from, ReplicaId(i), msg.clone());
                        }
                    }
                }
                Action::ToClient(
                    client,
                    Message::Reply {
                        timestamp, result, ..
                    },
                ) => {
                    self.replies
                        .entry((client, timestamp))
                        .or_default()
                        .insert(from, result);
                }
                Action::ToClient(..) => {}
                Action::SetTimer(d, id) => {
                    let at = self.queue.now() + d;
                    self.queue
                        .schedule(at, NetEvent::Timer { replica: from, id });
                }
            }
        }
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: Message) {
        if self.links_down.get(to.0).copied().unwrap_or(false)
            || self.links_down.get(from.0).copied().unwrap_or(false)
        {
            return;
        }
        self.metrics.messages += 1;
        self.metrics.bytes += msg.wire_size();
        *self
            .metrics
            .by_kind
            .entry(msg.kind().to_owned())
            .or_default() += 1;
        if self.drop_probability > 0.0 && self.rng.gen_bool(self.drop_probability) {
            return;
        }
        let jitter = SimDuration::from_micros(self.rng.gen_range(0..=self.latency.as_micros() / 4));
        let at = self.queue.now() + self.latency + jitter;
        self.queue.schedule(at, NetEvent::Deliver { to, from, msg });
    }
}

impl<S> std::fmt::Debug for BftCluster<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BftCluster")
            .field("replicas", &self.replicas.len())
            .field("f", &self.f)
            .field("now", &self.queue.now())
            .finish()
    }
}
