//! Protocol messages.

use std::fmt;

use cbft_digest::Digest;
use serde::{Deserialize, Serialize};

/// Identifier of a BFT replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub usize);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The shared client-authentication key. Stands in for the client
/// signatures / pairwise MACs of real PBFT: a Byzantine *replica* cannot
/// forge a client's authenticator for a modified operation (in the
/// simulation this is enforced by the fault-injection code never calling
/// [`Request::new`] on forged payloads).
pub const CLIENT_KEY: u64 = 0x00c1_1e47_ab1e_0000;

/// A client request: an opaque operation for the replicated state machine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Issuing client.
    pub client: u64,
    /// Client-local timestamp, also the deduplication key.
    pub timestamp: u64,
    /// The operation payload.
    pub op: Vec<u8>,
    /// Client authenticator (MAC surrogate); replicas drop requests whose
    /// authenticator does not match the payload.
    pub auth: Digest,
}

impl Request {
    /// Creates an authenticated request.
    pub fn new(client: u64, timestamp: u64, op: Vec<u8>) -> Self {
        let auth = Self::mac(client, timestamp, &op);
        Request {
            client,
            timestamp,
            op,
            auth,
        }
    }

    fn mac(client: u64, timestamp: u64, op: &[u8]) -> Digest {
        let mut h = cbft_digest::Sha256::new();
        h.update(&CLIENT_KEY.to_be_bytes());
        h.update(&client.to_be_bytes());
        h.update(&timestamp.to_be_bytes());
        h.update(op);
        h.finish()
    }

    /// Whether the authenticator matches the payload.
    pub fn is_authentic(&self) -> bool {
        self.auth == Self::mac(self.client, self.timestamp, &self.op)
    }

    /// The request digest used throughout the protocol.
    pub fn digest(&self) -> Digest {
        let mut h = cbft_digest::Sha256::new();
        h.update(&self.client.to_be_bytes());
        h.update(&self.timestamp.to_be_bytes());
        h.update(&self.op);
        h.finish()
    }
}

/// A prepared certificate carried in `VIEW-CHANGE`: evidence that a request
/// may have committed at this sequence number and must survive the view
/// change.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreparedEntry {
    /// Sequence number.
    pub seq: u64,
    /// The view in which it prepared.
    pub view: u64,
    /// The request itself (piggybacked so the new primary can re-propose).
    pub request: Request,
}

/// PBFT protocol messages.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Client → replicas.
    Request(Request),
    /// Primary → backups: ordering proposal (request piggybacked).
    PrePrepare {
        /// Current view.
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// Digest of the request.
        digest: Digest,
        /// The request.
        request: Request,
    },
    /// Backup → all: acknowledges the proposal.
    Prepare {
        /// Current view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Request digest.
        digest: Digest,
    },
    /// Replica → all: the request is prepared locally.
    Commit {
        /// Current view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Request digest.
        digest: Digest,
    },
    /// Replica → client: execution result.
    Reply {
        /// View at execution time.
        view: u64,
        /// Echoed client timestamp.
        timestamp: u64,
        /// The client addressed.
        client: u64,
        /// Application result.
        result: Vec<u8>,
    },
    /// Replica → all: vote to move to `new_view`, carrying prepared
    /// certificates.
    ViewChange {
        /// The proposed view.
        new_view: u64,
        /// The sender's stable checkpoint sequence number; the new primary
        /// never assigns at or below the highest voted checkpoint.
        stable_seq: u64,
        /// Entries prepared at the sender (above its stable checkpoint).
        prepared: Vec<PreparedEntry>,
    },
    /// New primary → all: installs `view` and re-proposes surviving
    /// entries plus pending requests.
    NewView {
        /// The installed view.
        view: u64,
        /// Re-proposals, as (seq, request) pairs, in sequence order.
        proposals: Vec<(u64, Request)>,
    },
    /// Replica → all: attests that the sender executed through `seq` with
    /// the given request-history digest. `2f + 1` matching votes make the
    /// checkpoint *stable*: protocol state below it is garbage-collected.
    Checkpoint {
        /// Sequence number of the checkpoint.
        seq: u64,
        /// Rolling digest of the executed request history through `seq`.
        history: Digest,
    },
    /// Lagging replica → peer: request the committed log above `from`.
    CatchUpRequest {
        /// The requester's executed watermark.
        from: u64,
    },
    /// Peer → lagging replica: the committed log, verifiable against a
    /// stable checkpoint's history digest.
    CatchUp {
        /// Checkpoint the log runs through.
        through: u64,
        /// History digest at `through` (must match a known stable proof).
        history: Digest,
        /// The requests, in sequence order.
        entries: Vec<(u64, Request)>,
    },
}

impl Message {
    /// A short tag for metrics and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Request(_) => "request",
            Message::PrePrepare { .. } => "pre-prepare",
            Message::Prepare { .. } => "prepare",
            Message::Commit { .. } => "commit",
            Message::Reply { .. } => "reply",
            Message::ViewChange { .. } => "view-change",
            Message::NewView { .. } => "new-view",
            Message::Checkpoint { .. } => "checkpoint",
            Message::CatchUpRequest { .. } => "catch-up-request",
            Message::CatchUp { .. } => "catch-up",
        }
    }

    /// Approximate wire size in bytes, for network-cost accounting.
    pub fn wire_size(&self) -> u64 {
        let body = match self {
            Message::Request(r) => r.op.len(),
            Message::PrePrepare { request, .. } => request.op.len() + 32,
            Message::Prepare { .. } | Message::Commit { .. } => 32,
            Message::Reply { result, .. } => result.len(),
            Message::ViewChange { prepared, .. } => {
                prepared.iter().map(|p| p.request.op.len() + 48).sum()
            }
            Message::NewView { proposals, .. } => {
                proposals.iter().map(|(_, r)| r.op.len() + 8).sum()
            }
            Message::Checkpoint { .. } => 40,
            Message::CatchUpRequest { .. } => 8,
            Message::CatchUp { entries, .. } => {
                40 + entries.iter().map(|(_, r)| r.op.len() + 8).sum::<usize>()
            }
        };
        64 + body as u64 // headers + MACs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_binds_all_request_fields() {
        let base = Request::new(1, 2, b"x".to_vec());
        let d = base.digest();
        let variants = [
            Request::new(9, 2, b"x".to_vec()),
            Request::new(1, 9, b"x".to_vec()),
            Request::new(1, 2, b"y".to_vec()),
        ];
        for v in variants {
            assert_ne!(v.digest(), d);
        }
        assert_eq!(base.digest(), base.clone().digest());
    }

    #[test]
    fn authenticator_detects_tampering() {
        let good = Request::new(1, 2, b"put a 1".to_vec());
        assert!(good.is_authentic());
        let mut forged = good.clone();
        forged.op.push(b'!');
        assert!(!forged.is_authentic(), "modified op must fail the MAC");
        let mut replayed = good;
        replayed.timestamp = 3;
        assert!(!replayed.is_authentic(), "replayed MAC must not transfer");
    }

    #[test]
    fn kinds_and_sizes() {
        let req = Request::new(1, 1, vec![0u8; 100]);
        let m = Message::Request(req.clone());
        assert_eq!(m.kind(), "request");
        assert!(m.wire_size() >= 100);
        let pp = Message::PrePrepare {
            view: 0,
            seq: 1,
            digest: req.digest(),
            request: req,
        };
        assert!(pp.wire_size() > m.wire_size());
    }
}
