//! The PBFT replica state machine.
//!
//! Pure logic: messages and timer firings go in, [`Action`]s come out. The
//! harness in [`crate::cluster`] owns the network and the clock, which
//! keeps the protocol directly unit-testable and deterministic.
//!
//! Implemented protocol (Castro & Liskov, OSDI '99, adapted):
//! * Normal case: the view's primary assigns sequence numbers and
//!   broadcasts `PRE-PREPARE`; every replica broadcasts `PREPARE`; a
//!   `2f + 1` prepare quorum triggers `COMMIT`; a `2f + 1` commit quorum
//!   executes in sequence order and replies to the client.
//! * View change (simplified, safety-preserving): a progress timeout makes
//!   replicas broadcast `VIEW-CHANGE(v+1)` carrying their *prepared*
//!   entries; the new primary collects `2f + 1` votes and re-proposes the
//!   union of prepared certificates (any committed entry is prepared at
//!   ≥ f + 1 honest replicas, so it appears in every `2f + 1` vote set)
//!   plus pending client requests in `NEW-VIEW`.
//! * Omitted relative to full PBFT: checkpointing/garbage collection and
//!   the `NEW-VIEW` validity proofs (our simulated network cannot forge
//!   messages, which is what the proofs defend against); documented in
//!   DESIGN.md.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use cbft_digest::Digest;
use cbft_sim::SimDuration;

use crate::message::{Message, PreparedEntry, ReplicaId, Request};

/// The replicated application. Must be deterministic: honest replicas
/// apply the same operations in the same order and must produce identical
/// results.
pub trait StateMachine {
    /// Applies one operation, returning the reply payload.
    fn apply(&mut self, op: &[u8]) -> Vec<u8>;
}

/// Fault injection for a replica.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BftBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Sends nothing, processes nothing (fail-stop).
    Crashed,
    /// As primary, sends conflicting proposals to different backups —
    /// the classic Byzantine equivocation attack.
    Equivocate,
}

/// Timer identities. Stale timers are detected by comparing the embedded
/// view/request against current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerId {
    /// A request was known at `view` and not yet executed when set; firing
    /// while still unexecuted in the same view triggers a view change.
    Progress {
        /// View when the timer was armed.
        view: u64,
        /// Digest of the awaited request.
        request: Digest,
    },
    /// A view change to `attempted` was initiated; firing while the view
    /// is still below it escalates to `attempted + 1`.
    ViewChangeRetry {
        /// The view the replica voted for.
        attempted: u64,
    },
}

/// An effect requested by the replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send a message to one replica.
    Send(ReplicaId, Message),
    /// Send a message to every other replica.
    Broadcast(Message),
    /// Send a reply to a client.
    ToClient(u64, Message),
    /// Arm a timer.
    SetTimer(SimDuration, TimerId),
}

#[derive(Clone, Debug)]
struct Entry {
    view: u64,
    digest: Digest,
    request: Option<Request>,
    commit_sent: bool,
    prepared: bool,
    committed: bool,
}

/// One PBFT replica.
#[derive(Debug)]
pub struct Replica<S> {
    id: ReplicaId,
    n: usize,
    f: usize,
    behavior: BftBehavior,
    view: u64,
    /// True after voting for a higher view, until `NEW-VIEW` arrives.
    in_view_change: bool,
    entries: BTreeMap<u64, Entry>,
    next_seq: u64,
    executed_through: u64,
    executed_log: Vec<(u64, Digest)>,
    state: S,
    prepares: HashMap<(u64, u64, Digest), BTreeSet<ReplicaId>>,
    commits: HashMap<(u64, u64, Digest), BTreeSet<ReplicaId>>,
    /// Requests known but not yet executed, in arrival order.
    pending: VecDeque<Request>,
    pending_digests: HashSet<Digest>,
    /// Digests of executed requests (never re-enter `pending`).
    executed_digests: HashSet<Digest>,
    /// Digests the primary has already assigned a sequence number.
    assigned: HashSet<Digest>,
    /// The highest-view prepared certificate per sequence number, retained
    /// across execution: view-change votes must cover *executed* entries
    /// too, or a lagging new primary could re-propose a committed request
    /// at a fresh sequence number and split the history (full PBFT gets
    /// this from checkpoint proofs, which we omit).
    prepared_history: BTreeMap<u64, PreparedEntry>,
    /// Executed requests retained for log-based catch-up.
    committed_log: BTreeMap<u64, Request>,
    /// Rolling digest of the executed request history (order-attesting).
    history: Digest,
    /// History digest after each executed sequence number (pruned at GC).
    history_at: BTreeMap<u64, Digest>,
    /// Checkpoint votes by (seq, history digest).
    checkpoint_votes: BTreeMap<(u64, Digest), BTreeSet<ReplicaId>>,
    /// The highest stable checkpoint: (seq, history digest).
    stable_checkpoint: (u64, Digest),
    /// Executed sequence numbers between checkpoints (0 disables).
    checkpoint_interval: u64,
    last_reply: HashMap<u64, (u64, Vec<u8>)>,
    vc_votes: BTreeMap<u64, BTreeMap<ReplicaId, (u64, Vec<PreparedEntry>)>>,
    voted_for: u64,
    progress_timeout: SimDuration,
    /// Normal-case messages that raced ahead of a view installation; they
    /// are replayed after `NEW-VIEW` (the network may reorder messages, and
    /// dropping them here would silently shrink quorums).
    buffered: Vec<(ReplicaId, Message)>,
}

/// Upper bound on buffered out-of-view messages; beyond this, the oldest
/// are discarded (retransmission recovers them on a real network).
const MAX_BUFFERED: usize = 100_000;

impl<S: StateMachine> Replica<S> {
    /// Creates replica `id` of an `n = 3f + 1` group.
    ///
    /// # Panics
    ///
    /// Panics unless `n == 3f + 1` for some `f ≥ 1` and `id < n`.
    pub fn new(id: ReplicaId, n: usize, state: S) -> Self {
        assert!(
            n >= 4 && (n - 1).is_multiple_of(3),
            "n must be 3f+1, got {n}"
        );
        assert!(id.0 < n, "replica id out of range");
        Replica {
            id,
            n,
            f: (n - 1) / 3,
            behavior: BftBehavior::Honest,
            view: 0,
            in_view_change: false,
            entries: BTreeMap::new(),
            next_seq: 1,
            executed_through: 0,
            executed_log: Vec::new(),
            state,
            prepares: HashMap::new(),
            commits: HashMap::new(),
            pending: VecDeque::new(),
            pending_digests: HashSet::new(),
            executed_digests: HashSet::new(),
            assigned: HashSet::new(),
            prepared_history: BTreeMap::new(),
            committed_log: BTreeMap::new(),
            history: Digest::of(b"genesis"),
            history_at: BTreeMap::new(),
            checkpoint_votes: BTreeMap::new(),
            stable_checkpoint: (0, Digest::of(b"genesis")),
            checkpoint_interval: 16,
            last_reply: HashMap::new(),
            vc_votes: BTreeMap::new(),
            voted_for: 0,
            progress_timeout: SimDuration::from_millis(400),
            buffered: Vec::new(),
        }
    }

    /// Sets the fault behaviour.
    pub fn set_behavior(&mut self, behavior: BftBehavior) {
        self.behavior = behavior;
    }

    /// The fault behaviour.
    pub fn behavior(&self) -> BftBehavior {
        self.behavior
    }

    /// Overrides the progress timeout.
    pub fn set_progress_timeout(&mut self, d: SimDuration) {
        self.progress_timeout = d;
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The application state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The executed history as `(seq, request digest)` pairs — the object
    /// of the safety invariant (honest replicas' logs are prefix-ordered).
    pub fn executed_log(&self) -> &[(u64, Digest)] {
        &self.executed_log
    }

    /// Sets the checkpoint interval (0 disables checkpointing).
    pub fn set_checkpoint_interval(&mut self, interval: u64) {
        self.checkpoint_interval = interval;
    }

    /// The highest stable checkpoint `(seq, history digest)`.
    pub fn stable_checkpoint(&self) -> (u64, Digest) {
        self.stable_checkpoint
    }

    /// Number of live protocol entries (bounded by GC between stable
    /// checkpoints).
    pub fn live_entries(&self) -> usize {
        self.entries.len()
    }

    /// The primary of view `v`.
    pub fn primary_of(&self, v: u64) -> ReplicaId {
        ReplicaId((v as usize) % self.n)
    }

    fn is_primary(&self) -> bool {
        self.primary_of(self.view) == self.id
    }

    fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Handles an incoming message.
    pub fn on_message(&mut self, from: ReplicaId, msg: Message, out: &mut Vec<Action>) {
        if self.behavior == BftBehavior::Crashed {
            return;
        }
        // Normal-case messages from a view we have not installed yet (or
        // while we await NEW-VIEW) are buffered and replayed later.
        if let Message::PrePrepare { view, .. }
        | Message::Prepare { view, .. }
        | Message::Commit { view, .. } = &msg
        {
            if *view > self.view || (*view == self.view && self.in_view_change) {
                if self.buffered.len() >= MAX_BUFFERED {
                    self.buffered.remove(0);
                }
                self.buffered.push((from, msg));
                return;
            }
        }
        match msg {
            Message::Request(req) => self.on_request(req, out),
            Message::PrePrepare {
                view,
                seq,
                digest,
                request,
            } => self.on_pre_prepare(from, view, seq, digest, request, out),
            Message::Prepare { view, seq, digest } => self.on_prepare(from, view, seq, digest, out),
            Message::Commit { view, seq, digest } => self.on_commit(from, view, seq, digest, out),
            Message::ViewChange {
                new_view,
                stable_seq,
                prepared,
            } => self.on_view_change(from, new_view, stable_seq, prepared, out),
            Message::NewView { view, proposals } => self.on_new_view(from, view, proposals, out),
            Message::Checkpoint { seq, history } => self.on_checkpoint(from, seq, history, out),
            Message::CatchUpRequest { from: from_seq } => {
                self.on_catch_up_request(from, from_seq, out)
            }
            Message::CatchUp {
                through,
                history,
                entries,
            } => self.on_catch_up(through, history, entries, out),
            Message::Reply { .. } => {} // replicas never receive replies
        }
    }

    /// Handles a timer firing.
    pub fn on_timer(&mut self, timer: TimerId, out: &mut Vec<Action>) {
        if self.behavior == BftBehavior::Crashed {
            return;
        }
        match timer {
            TimerId::Progress { view, request } => {
                if view == self.view
                    && !self.in_view_change
                    && self.pending_digests.contains(&request)
                {
                    self.start_view_change(self.view + 1, out);
                }
            }
            TimerId::ViewChangeRetry { attempted } => {
                if self.view < attempted {
                    self.start_view_change(attempted + 1, out);
                }
            }
        }
    }

    // --- normal case -------------------------------------------------------

    fn on_request(&mut self, req: Request, out: &mut Vec<Action>) {
        if !req.is_authentic() {
            return; // forged or tampered request
        }
        // Deduplicate: re-send the cached reply for old timestamps.
        if let Some((ts, result)) = self.last_reply.get(&req.client) {
            if *ts >= req.timestamp {
                out.push(Action::ToClient(
                    req.client,
                    Message::Reply {
                        view: self.view,
                        timestamp: req.timestamp,
                        client: req.client,
                        result: result.clone(),
                    },
                ));
                return;
            }
        }
        let digest = req.digest();
        if self.pending_digests.insert(digest) {
            self.pending.push_back(req.clone());
        }
        out.push(Action::SetTimer(
            self.progress_timeout,
            TimerId::Progress {
                view: self.view,
                request: digest,
            },
        ));
        if self.is_primary() && !self.in_view_change {
            self.assign(req, out);
        }
    }

    fn assign(&mut self, req: Request, out: &mut Vec<Action>) {
        let digest = req.digest();
        if !self.assigned.insert(digest) {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            seq,
            Entry {
                view: self.view,
                digest,
                request: Some(req.clone()),
                commit_sent: false,
                prepared: false,
                committed: false,
            },
        );
        match self.behavior {
            BftBehavior::Equivocate => {
                // Conflicting proposals: odd-numbered backups get a forged
                // request. Quorum intersection prevents either version from
                // committing; the progress timeout then unseats us.
                let mut forged = req.clone();
                forged.op.push(b'!');
                let forged_digest = forged.digest();
                for r in 0..self.n {
                    let to = ReplicaId(r);
                    if to == self.id {
                        continue;
                    }
                    let msg = if r % 2 == 1 {
                        Message::PrePrepare {
                            view: self.view,
                            seq,
                            digest: forged_digest,
                            request: forged.clone(),
                        }
                    } else {
                        Message::PrePrepare {
                            view: self.view,
                            seq,
                            digest,
                            request: req.clone(),
                        }
                    };
                    out.push(Action::Send(to, msg));
                }
            }
            _ => out.push(Action::Broadcast(Message::PrePrepare {
                view: self.view,
                seq,
                digest,
                request: req,
            })),
        }
        self.send_prepare(seq, digest, out);
    }

    fn on_pre_prepare(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        request: Request,
        out: &mut Vec<Action>,
    ) {
        if view != self.view || self.in_view_change || from != self.primary_of(view) {
            return;
        }
        if digest != request.digest() || !request.is_authentic() {
            return; // malformed or forged proposal
        }
        match self.entries.get(&seq) {
            Some(e) if e.view == view && e.digest != digest => return, // conflicting — keep first
            Some(e) if e.view == view => {
                // Duplicate of an accepted proposal.
                let _ = e;
                return;
            }
            _ => {}
        }
        if self.pending_digests.insert(digest) {
            self.pending.push_back(request.clone());
            out.push(Action::SetTimer(
                self.progress_timeout,
                TimerId::Progress {
                    view: self.view,
                    request: digest,
                },
            ));
        }
        self.entries.insert(
            seq,
            Entry {
                view,
                digest,
                request: Some(request),
                commit_sent: false,
                prepared: false,
                committed: false,
            },
        );
        self.send_prepare(seq, digest, out);
        self.check_prepared(seq, out);
    }

    fn send_prepare(&mut self, seq: u64, digest: Digest, out: &mut Vec<Action>) {
        self.prepares
            .entry((self.view, seq, digest))
            .or_default()
            .insert(self.id);
        out.push(Action::Broadcast(Message::Prepare {
            view: self.view,
            seq,
            digest,
        }));
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        out: &mut Vec<Action>,
    ) {
        if view != self.view || self.in_view_change {
            return;
        }
        self.prepares
            .entry((view, seq, digest))
            .or_default()
            .insert(from);
        self.check_prepared(seq, out);
    }

    fn check_prepared(&mut self, seq: u64, out: &mut Vec<Action>) {
        let quorum = self.quorum();
        let view = self.view;
        let Some(entry) = self.entries.get_mut(&seq) else {
            return;
        };
        if entry.view != view || entry.commit_sent {
            return;
        }
        let votes = self
            .prepares
            .get(&(view, seq, entry.digest))
            .map_or(0, BTreeSet::len);
        if votes >= quorum {
            entry.prepared = true;
            entry.commit_sent = true;
            let digest = entry.digest;
            if let Some(request) = entry.request.clone() {
                self.prepared_history
                    .insert(seq, PreparedEntry { seq, view, request });
            }
            self.commits
                .entry((view, seq, digest))
                .or_default()
                .insert(self.id);
            out.push(Action::Broadcast(Message::Commit { view, seq, digest }));
            self.check_committed(seq, out);
        }
    }

    fn on_commit(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        out: &mut Vec<Action>,
    ) {
        if view != self.view || self.in_view_change {
            return;
        }
        self.commits
            .entry((view, seq, digest))
            .or_default()
            .insert(from);
        self.check_committed(seq, out);
    }

    fn check_committed(&mut self, seq: u64, out: &mut Vec<Action>) {
        let quorum = self.quorum();
        let view = self.view;
        let Some(entry) = self.entries.get_mut(&seq) else {
            return;
        };
        if entry.view != view || !entry.prepared || entry.committed {
            return;
        }
        let votes = self
            .commits
            .get(&(view, seq, entry.digest))
            .map_or(0, BTreeSet::len);
        if votes >= quorum {
            entry.committed = true;
            self.try_execute(out);
        }
    }

    fn try_execute(&mut self, out: &mut Vec<Action>) {
        loop {
            let next = self.executed_through + 1;
            let Some(entry) = self.entries.get(&next) else {
                return;
            };
            if !entry.committed {
                return;
            }
            let Some(request) = entry.request.clone() else {
                return;
            };
            let digest = entry.digest;
            let result = self.state.apply(&request.op);
            self.executed_through = next;
            self.executed_log.push((next, digest));
            self.history = self.history.combine(&digest);
            self.history_at.insert(next, self.history);
            self.committed_log.insert(next, request.clone());
            self.last_reply
                .insert(request.client, (request.timestamp, result.clone()));
            self.executed_digests.insert(digest);
            self.pending_digests.remove(&digest);
            self.pending.retain(|r| r.digest() != digest);
            if self.checkpoint_interval > 0 && next.is_multiple_of(self.checkpoint_interval) {
                let history = self.history;
                self.checkpoint_votes
                    .entry((next, history))
                    .or_default()
                    .insert(self.id);
                out.push(Action::Broadcast(Message::Checkpoint {
                    seq: next,
                    history,
                }));
                self.try_stabilize(next, history, out);
            }
            out.push(Action::ToClient(
                request.client,
                Message::Reply {
                    view: self.view,
                    timestamp: request.timestamp,
                    client: request.client,
                    result,
                },
            ));
        }
    }

    // --- view change -------------------------------------------------------

    fn start_view_change(&mut self, new_view: u64, out: &mut Vec<Action>) {
        if new_view <= self.view || self.voted_for >= new_view {
            return;
        }
        self.voted_for = new_view;
        self.in_view_change = true;
        let prepared: Vec<PreparedEntry> = self.prepared_history.values().cloned().collect();
        let stable_seq = self.stable_checkpoint.0;
        let msg = Message::ViewChange {
            new_view,
            stable_seq,
            prepared: prepared.clone(),
        };
        // Record our own vote (broadcast does not loop back).
        self.vc_votes
            .entry(new_view)
            .or_default()
            .insert(self.id, (stable_seq, prepared));
        out.push(Action::Broadcast(msg));
        out.push(Action::SetTimer(
            self.progress_timeout,
            TimerId::ViewChangeRetry {
                attempted: new_view,
            },
        ));
        self.maybe_install_new_view(new_view, out);
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: u64,
        stable_seq: u64,
        prepared: Vec<PreparedEntry>,
        out: &mut Vec<Action>,
    ) {
        if new_view <= self.view {
            return;
        }
        self.vc_votes
            .entry(new_view)
            .or_default()
            .insert(from, (stable_seq, prepared));
        // Join a view change once f+1 replicas vouch for it — at least one
        // honest replica timed out, so the complaint is genuine.
        let votes = self.vc_votes[&new_view].len();
        if votes > self.f && self.voted_for < new_view {
            self.start_view_change(new_view, out);
            return;
        }
        self.maybe_install_new_view(new_view, out);
    }

    fn maybe_install_new_view(&mut self, new_view: u64, out: &mut Vec<Action>) {
        if self.primary_of(new_view) != self.id || self.view >= new_view {
            return;
        }
        let Some(votes) = self.vc_votes.get(&new_view) else {
            return;
        };
        if votes.len() < self.quorum() {
            return;
        }
        // Union of prepared certificates: for each sequence number keep the
        // certificate from the highest view.
        let mut by_seq: BTreeMap<u64, PreparedEntry> = BTreeMap::new();
        let mut max_voted_stable = 0u64;
        for (stable_seq, entries) in votes.values() {
            max_voted_stable = max_voted_stable.max(*stable_seq);
            for entry in entries {
                if !entry.request.is_authentic() {
                    continue; // a Byzantine voter stuffed a forged certificate
                }
                match by_seq.get(&entry.seq) {
                    Some(existing) if existing.view >= entry.view => {}
                    _ => {
                        by_seq.insert(entry.seq, entry.clone());
                    }
                }
            }
        }
        let mut proposals: Vec<(u64, Request)> =
            by_seq.into_values().map(|e| (e.seq, e.request)).collect();
        let mut covered: HashSet<Digest> = proposals.iter().map(|(_, r)| r.digest()).collect();
        // Fresh assignments start above everything any voter has seen:
        // certificates, our execution, and — crucially — the highest voted
        // stable checkpoint (its log was garbage-collected, so no
        // certificates below it can appear in the votes).
        let mut next = proposals
            .iter()
            .map(|(s, _)| *s)
            .max()
            .unwrap_or(0)
            .max(self.executed_through)
            .max(max_voted_stable)
            + 1;
        // Re-propose pending requests that survived no certificate.
        for req in self.pending.clone() {
            let d = req.digest();
            if covered.insert(d) {
                proposals.push((next, req));
                next += 1;
            }
        }
        let msg = Message::NewView {
            view: new_view,
            proposals: proposals.clone(),
        };
        out.push(Action::Broadcast(msg));
        self.install_view(new_view, proposals, out);
    }

    fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: u64,
        proposals: Vec<(u64, Request)>,
        out: &mut Vec<Action>,
    ) {
        if view <= self.view || from != self.primary_of(view) {
            return;
        }
        self.install_view(view, proposals, out);
    }

    fn install_view(&mut self, view: u64, proposals: Vec<(u64, Request)>, out: &mut Vec<Action>) {
        self.view = view;
        self.in_view_change = false;
        self.assigned.clear();
        self.next_seq = self.executed_through + 1;
        for (seq, request) in proposals {
            if !request.is_authentic() {
                continue;
            }
            // Re-prepare even already-executed sequence numbers: lagging
            // replicas need our prepares/commits to catch up, and
            // try_execute never re-executes below the watermark.
            let digest = request.digest();
            self.assigned.insert(digest);
            if !self.executed_digests.contains(&digest) && self.pending_digests.insert(digest) {
                self.pending.push_back(request.clone());
            }
            self.entries.insert(
                seq,
                Entry {
                    view,
                    digest,
                    request: Some(request),
                    commit_sent: false,
                    prepared: false,
                    committed: false,
                },
            );
            self.next_seq = self.next_seq.max(seq + 1);
            self.send_prepare(seq, digest, out);
            self.check_prepared(seq, out);
        }
        // Re-arm progress timers for everything still outstanding.
        for req in self.pending.clone() {
            out.push(Action::SetTimer(
                self.progress_timeout,
                TimerId::Progress {
                    view: self.view,
                    request: req.digest(),
                },
            ));
        }
        // Replay messages that raced ahead of this installation.
        let buffered = std::mem::take(&mut self.buffered);
        for (from, msg) in buffered {
            self.on_message(from, msg, out);
        }
    }

    // --- checkpoints & catch-up ---------------------------------------------

    fn on_checkpoint(&mut self, from: ReplicaId, seq: u64, history: Digest, out: &mut Vec<Action>) {
        if seq <= self.stable_checkpoint.0 {
            return;
        }
        self.checkpoint_votes
            .entry((seq, history))
            .or_default()
            .insert(from);
        self.try_stabilize(seq, history, out);
    }

    /// Declares `(seq, history)` stable on a `2f + 1` quorum: protocol
    /// state at or below `seq` is garbage-collected, and a replica that
    /// lags behind the stable watermark requests the committed log.
    fn try_stabilize(&mut self, seq: u64, history: Digest, out: &mut Vec<Action>) {
        let votes = self
            .checkpoint_votes
            .get(&(seq, history))
            .map_or(0, BTreeSet::len);
        if votes < self.quorum() || seq <= self.stable_checkpoint.0 {
            return;
        }
        self.stable_checkpoint = (seq, history);
        // Garbage-collect protocol state covered by the checkpoint.
        self.entries.retain(|s, _| *s > seq);
        self.prepares.retain(|(_, s, _), _| *s > seq);
        self.commits.retain(|(_, s, _), _| *s > seq);
        self.prepared_history.retain(|s, _| *s > seq);
        self.history_at.retain(|s, _| *s >= seq);
        self.checkpoint_votes.retain(|(s, _), _| *s > seq);
        if self.executed_through < seq {
            // We lag behind a stable checkpoint: fetch the committed log
            // from the peers that voted for it.
            out.push(Action::Broadcast(Message::CatchUpRequest {
                from: self.executed_through,
            }));
        }
    }

    fn on_catch_up_request(&mut self, from: ReplicaId, from_seq: u64, out: &mut Vec<Action>) {
        let (through, history) = self.stable_checkpoint;
        if through <= from_seq {
            return; // nothing stable beyond the requester's watermark
        }
        let entries: Vec<(u64, Request)> = self
            .committed_log
            .range(from_seq + 1..=through)
            .map(|(s, r)| (*s, r.clone()))
            .collect();
        // The log must be gap-free or the requester cannot verify it.
        if entries.len() as u64 != through - from_seq {
            return;
        }
        out.push(Action::Send(
            from,
            Message::CatchUp {
                through,
                history,
                entries,
            },
        ));
    }

    /// Applies a fetched committed log after verifying its request-digest
    /// chain against a stable checkpoint proof we hold. The chain folds
    /// request digests only, so a Byzantine sender cannot substitute
    /// different requests without breaking the final digest.
    fn on_catch_up(
        &mut self,
        through: u64,
        history: Digest,
        entries: Vec<(u64, Request)>,
        out: &mut Vec<Action>,
    ) {
        if through <= self.executed_through {
            return;
        }
        // Accept only logs whose endpoint matches a checkpoint we know to
        // be stable (our own watermark or a quorum of votes).
        let proven = self.stable_checkpoint == (through, history)
            || self
                .checkpoint_votes
                .get(&(through, history))
                .is_some_and(|v| v.len() >= self.quorum());
        if !proven {
            return;
        }
        // Verify contiguity, authenticity and the digest chain BEFORE
        // applying anything.
        let mut expected_seq = self.executed_through + 1;
        let mut chain = self
            .history_at
            .get(&self.executed_through)
            .copied()
            .unwrap_or(self.history);
        for (seq, request) in &entries {
            if *seq != expected_seq || !request.is_authentic() {
                return;
            }
            chain = chain.combine(&request.digest());
            expected_seq += 1;
        }
        if expected_seq != through + 1 || chain != history {
            return;
        }
        for (seq, request) in entries {
            let digest = request.digest();
            let result = self.state.apply(&request.op);
            self.executed_through = seq;
            self.executed_log.push((seq, digest));
            self.history = self.history.combine(&digest);
            self.history_at.insert(seq, self.history);
            self.committed_log.insert(seq, request.clone());
            self.last_reply
                .insert(request.client, (request.timestamp, result));
            self.executed_digests.insert(digest);
            self.pending_digests.remove(&digest);
            self.pending.retain(|r| r.digest() != digest);
        }
        self.next_seq = self.next_seq.max(self.executed_through + 1);
        // Execution may now continue past the transferred prefix.
        self.try_execute(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvStore;

    fn req(ts: u64) -> Request {
        Request::new(1, ts, format!("put k{ts} v").into_bytes())
    }

    fn new_group(n: usize) -> Vec<Replica<KvStore>> {
        (0..n)
            .map(|i| Replica::new(ReplicaId(i), n, KvStore::default()))
            .collect()
    }

    /// Runs actions through a perfect in-memory network until quiescent.
    fn pump(replicas: &mut [Replica<KvStore>], mut inbox: Vec<(ReplicaId, ReplicaId, Message)>) {
        let n = replicas.len();
        while let Some((from, to, msg)) = inbox.pop() {
            let mut out = Vec::new();
            replicas[to.0].on_message(from, msg, &mut out);
            for a in out {
                match a {
                    Action::Send(dst, m) => inbox.push((to, dst, m)),
                    Action::Broadcast(m) => {
                        for r in 0..n {
                            if r != to.0 {
                                inbox.push((to, ReplicaId(r), m.clone()));
                            }
                        }
                    }
                    Action::ToClient(..) | Action::SetTimer(..) => {}
                }
            }
        }
    }

    fn client_broadcast(replicas: &mut [Replica<KvStore>], r: Request) {
        let n = replicas.len();
        let msgs: Vec<_> = (0..n)
            .map(|i| (ReplicaId(n), ReplicaId(i), Message::Request(r.clone())))
            .collect();
        pump(replicas, msgs);
    }

    #[test]
    fn normal_case_commits_everywhere() {
        let mut group = new_group(4);
        client_broadcast(&mut group, req(1));
        for r in &group {
            assert_eq!(r.executed_log().len(), 1, "replica {}", r.id.0);
        }
        let logs: Vec<_> = group.iter().map(|r| r.executed_log().to_vec()).collect();
        assert!(logs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sequence_of_requests_executes_in_order() {
        let mut group = new_group(4);
        for ts in 1..=5 {
            client_broadcast(&mut group, req(ts));
        }
        for r in &group {
            assert_eq!(r.executed_log().len(), 5);
            let seqs: Vec<u64> = r.executed_log().iter().map(|(s, _)| *s).collect();
            assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn f_crashed_backups_do_not_block_commit() {
        let mut group = new_group(4);
        group[3].set_behavior(BftBehavior::Crashed);
        client_broadcast(&mut group, req(1));
        for r in group.iter().take(3) {
            assert_eq!(r.executed_log().len(), 1);
        }
        assert_eq!(group[3].executed_log().len(), 0);
    }

    #[test]
    fn equivocating_primary_cannot_commit_two_values() {
        let mut group = new_group(4);
        group[0].set_behavior(BftBehavior::Equivocate);
        client_broadcast(&mut group, req(1));
        // Neither version may reach a commit quorum anywhere.
        let committed: Vec<usize> = group.iter().map(|r| r.executed_log().len()).collect();
        // Safety: all replicas that executed anything executed the SAME digest.
        let digests: HashSet<Digest> = group
            .iter()
            .flat_map(|r| r.executed_log().iter().map(|(_, d)| *d))
            .collect();
        assert!(
            digests.len() <= 1,
            "equivocation must not split execution: {committed:?}"
        );
    }

    #[test]
    fn progress_timeout_triggers_view_change_vote() {
        let mut group = new_group(4);
        // Deliver the request only to backup 1 — primary 0 never assigns.
        let r = req(1);
        let d = r.digest();
        let mut out = Vec::new();
        group[1].on_message(ReplicaId(4), Message::Request(r), &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::SetTimer(_, TimerId::Progress { .. }))));
        let mut out = Vec::new();
        group[1].on_timer(
            TimerId::Progress {
                view: 0,
                request: d,
            },
            &mut out,
        );
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Broadcast(Message::ViewChange { new_view: 1, .. })
        )));
    }

    #[test]
    fn stale_progress_timer_is_ignored_after_execution() {
        let mut group = new_group(4);
        let r = req(1);
        let d = r.digest();
        client_broadcast(&mut group, r);
        let mut out = Vec::new();
        group[1].on_timer(
            TimerId::Progress {
                view: 0,
                request: d,
            },
            &mut out,
        );
        assert!(
            out.is_empty(),
            "executed request must not trigger view change"
        );
    }

    #[test]
    fn view_change_installs_new_primary_and_recovers_request() {
        let mut group = new_group(4);
        group[0].set_behavior(BftBehavior::Crashed);
        let r = req(1);
        let d = r.digest();
        // Client reaches only the live replicas.
        let msgs: Vec<_> = (1..4)
            .map(|i| (ReplicaId(4), ReplicaId(i), Message::Request(r.clone())))
            .collect();
        pump(&mut group, msgs);
        assert!(group.iter().all(|g| g.executed_log().is_empty()));
        // Progress timers fire on the three live replicas.
        let mut inbox = Vec::new();
        for i in 1..4 {
            let mut out = Vec::new();
            group[i].on_timer(
                TimerId::Progress {
                    view: 0,
                    request: d,
                },
                &mut out,
            );
            for a in out {
                if let Action::Broadcast(m) = a {
                    for to in 0..4 {
                        if to != i {
                            inbox.push((ReplicaId(i), ReplicaId(to), m.clone()));
                        }
                    }
                }
            }
        }
        pump(&mut group, inbox);
        for i in 1..4 {
            assert_eq!(group[i].view(), 1, "replica {i} moved to view 1");
            assert_eq!(
                group[i].executed_log(),
                &[(1, d)],
                "request recovered and executed in the new view"
            );
        }
    }

    #[test]
    fn duplicate_request_returns_cached_reply() {
        let mut group = new_group(4);
        let r = req(1);
        client_broadcast(&mut group, r.clone());
        let mut out = Vec::new();
        group[0].on_message(ReplicaId(4), Message::Request(r), &mut out);
        assert!(
            out.iter()
                .any(|a| matches!(a, Action::ToClient(1, Message::Reply { .. }))),
            "{out:?}"
        );
        assert_eq!(group[0].executed_log().len(), 1, "not executed twice");
    }

    #[test]
    fn rejects_bad_group_sizes() {
        let result = std::panic::catch_unwind(|| Replica::new(ReplicaId(0), 5, KvStore::default()));
        assert!(result.is_err());
    }

    #[test]
    fn malformed_pre_prepare_is_dropped() {
        let mut group = new_group(4);
        let r = req(1);
        let mut out = Vec::new();
        group[1].on_message(
            ReplicaId(0),
            Message::PrePrepare {
                view: 0,
                seq: 1,
                digest: Digest::of(b"lies"),
                request: r,
            },
            &mut out,
        );
        assert!(out.is_empty(), "digest mismatch must be ignored");
    }

    #[test]
    fn pre_prepare_from_non_primary_is_dropped() {
        let mut group = new_group(4);
        let r = req(1);
        let d = r.digest();
        let mut out = Vec::new();
        group[2].on_message(
            ReplicaId(1), // not the view-0 primary
            Message::PrePrepare {
                view: 0,
                seq: 1,
                digest: d,
                request: r,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::KvStore;

    fn group_with_interval(n: usize, interval: u64) -> Vec<Replica<KvStore>> {
        (0..n)
            .map(|i| {
                let mut r = Replica::new(ReplicaId(i), n, KvStore::default());
                r.set_checkpoint_interval(interval);
                r
            })
            .collect()
    }

    fn pump(replicas: &mut [Replica<KvStore>], mut inbox: Vec<(ReplicaId, ReplicaId, Message)>) {
        let n = replicas.len();
        while let Some((from, to, msg)) = inbox.pop() {
            let mut out = Vec::new();
            replicas[to.0].on_message(from, msg, &mut out);
            for a in out {
                match a {
                    Action::Send(dst, m) => inbox.push((to, dst, m)),
                    Action::Broadcast(m) => {
                        for r in 0..n {
                            if r != to.0 {
                                inbox.push((to, ReplicaId(r), m.clone()));
                            }
                        }
                    }
                    Action::ToClient(..) | Action::SetTimer(..) => {}
                }
            }
        }
    }

    fn commit(replicas: &mut [Replica<KvStore>], ts: u64) {
        let n = replicas.len();
        let req = Request::new(1, ts, format!("put k{ts} v").into_bytes());
        let msgs: Vec<_> = (0..n)
            .map(|i| (ReplicaId(n), ReplicaId(i), Message::Request(req.clone())))
            .collect();
        pump(replicas, msgs);
    }

    #[test]
    fn checkpoints_stabilize_and_collect_garbage() {
        let mut group = group_with_interval(4, 2);
        for ts in 1..=6 {
            commit(&mut group, ts);
        }
        for r in &group {
            assert_eq!(r.executed_log().len(), 6);
            let (stable, _) = r.stable_checkpoint();
            assert!(stable >= 4, "stable at {stable}");
            assert!(r.live_entries() <= 2, "GC keeps the window small");
        }
        // All replicas agree on the stable checkpoint digest.
        let cp = group[0].stable_checkpoint();
        assert!(group.iter().all(|r| r.stable_checkpoint() == cp));
    }

    #[test]
    fn catch_up_rejects_tampered_logs() {
        let mut group = group_with_interval(4, 2);
        for ts in 1..=4 {
            commit(&mut group, ts);
        }
        let (through, history) = group[0].stable_checkpoint();
        // Build a forged log: one request substituted.
        let mut entries: Vec<(u64, Request)> = (1..=through)
            .map(|s| (s, Request::new(1, s, format!("put k{s} v").into_bytes())))
            .collect();
        entries[1].1 = Request::new(1, 99, b"put evil v".to_vec());

        let mut victim = Replica::new(ReplicaId(0), 4, KvStore::default());
        victim.set_checkpoint_interval(2);
        let mut out = Vec::new();
        // Teach the victim the stable proof first (2f+1 = 3 votes).
        for voter in 1..4 {
            victim.on_message(
                ReplicaId(voter),
                Message::Checkpoint {
                    seq: through,
                    history,
                },
                &mut out,
            );
        }
        victim.on_message(
            ReplicaId(2),
            Message::CatchUp {
                through,
                history,
                entries,
            },
            &mut out,
        );
        assert_eq!(
            victim.executed_log().len(),
            0,
            "digest-chain verification must reject the forged log"
        );
    }

    #[test]
    fn catch_up_applies_a_genuine_log() {
        let mut group = group_with_interval(4, 2);
        for ts in 1..=4 {
            commit(&mut group, ts);
        }
        let (through, history) = group[0].stable_checkpoint();
        let entries: Vec<(u64, Request)> = (1..=through)
            .map(|s| (s, Request::new(1, s, format!("put k{s} v").into_bytes())))
            .collect();

        let mut victim = Replica::new(ReplicaId(3), 4, KvStore::default());
        victim.set_checkpoint_interval(2);
        let mut out = Vec::new();
        for voter in 0..3 {
            victim.on_message(
                ReplicaId(voter),
                Message::Checkpoint {
                    seq: through,
                    history,
                },
                &mut out,
            );
        }
        victim.on_message(
            ReplicaId(1),
            Message::CatchUp {
                through,
                history,
                entries,
            },
            &mut out,
        );
        assert_eq!(victim.executed_log().len(), through as usize);
        assert_eq!(
            victim.executed_log(),
            &group[0].executed_log()[..through as usize],
            "transferred prefix matches the group history"
        );
    }

    #[test]
    fn catch_up_request_is_answered_gap_free_or_not_at_all() {
        let mut group = group_with_interval(4, 2);
        for ts in 1..=4 {
            commit(&mut group, ts);
        }
        let mut out = Vec::new();
        group[0].on_message(ReplicaId(3), Message::CatchUpRequest { from: 0 }, &mut out);
        let reply = out
            .iter()
            .find_map(|a| match a {
                Action::Send(
                    to,
                    Message::CatchUp {
                        through, entries, ..
                    },
                ) => Some((*to, *through, entries.len())),
                _ => None,
            })
            .expect("a stable peer answers");
        let (to, through, n) = reply;
        assert_eq!(to, ReplicaId(3));
        assert_eq!(n as u64, through, "contiguous from 1..=through");
    }
}
