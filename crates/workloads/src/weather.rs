//! NCDC daily weather summaries (§6.4) — schema `(station, date, temp)`.
//!
//! The paper's script "involves finding average temperature over multiple
//! years for each weather station followed by counting the number of
//! stations with the same average". Temperatures are integers (tenths of
//! a degree), which keeps replicas deterministic (§5.4).

use cbft_dataflow::{Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Workload;

/// Storage name used by the script.
pub const INPUT: &str = "weather";

/// Average temperature per station, then a histogram of averages.
pub const AVERAGE_TEMPERATURE_SCRIPT: &str = "
    w = LOAD 'weather' AS (station, date, temp);
    valid = FILTER w BY temp IS NOT NULL;
    g = GROUP valid BY station;
    avgs = FOREACH g GENERATE group AS station, AVG(valid.temp) AS t;
    g2 = GROUP avgs BY t;
    hist = FOREACH g2 GENERATE group AS t, COUNT(avgs) AS stations;
    STORE hist INTO 'temp_histogram';
";

/// Generates `readings` daily observations across `readings / 40 + 1`
/// stations. Each station has a base climate; daily readings jitter
/// around it; ~1% are missing (null).
pub fn generate(seed: u64, readings: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let stations = (readings / 40 + 1) as i64;
    (0..readings)
        .map(|i| {
            let station = rng.gen_range(0..stations);
            // Base climate in tenths of °C, deterministic per station.
            let base = (station * 37 % 400) - 100;
            let temp = if rng.gen_ratio(1, 100) {
                Value::Null
            } else {
                Value::Int(base + rng.gen_range(-60i64..=60))
            };
            Record::new(vec![
                Value::Int(station),
                Value::Int(20_200_101 + (i % 365) as i64),
                temp,
            ])
        })
        .collect()
}

/// The Weather Average Temperature workload of §6.4.
pub fn average_temperature(seed: u64, readings: usize) -> Workload {
    Workload {
        input_name: INPUT,
        records: generate(seed, readings),
        script: AVERAGE_TEMPERATURE_SCRIPT,
        outputs: &["temp_histogram"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let w = generate(9, 400);
        assert_eq!(w, generate(9, 400));
        assert_eq!(w.len(), 400);
    }

    #[test]
    fn some_missing_readings() {
        let w = generate(10, 2000);
        let nulls = w.iter().filter(|r| r.get(2) == Some(&Value::Null)).count();
        assert!(nulls > 0 && nulls < 100, "{nulls}");
    }

    #[test]
    fn temperatures_are_bounded_integers() {
        for r in generate(11, 1000) {
            if let Some(t) = r.get(2).unwrap().as_int() {
                assert!((-200..=500).contains(&t), "{t}");
            }
        }
    }
}
