//! Synthetic data sets and the analysis scripts of the ClusterBFT
//! evaluation (§6).
//!
//! The paper evaluates on three real data sets we cannot redistribute:
//! the Kwak et al. Twitter follower graph (§6.1), a 1.3 GB subset of the
//! RITA airline on-time data (§6.2) and a 640 MB subset of the NCDC
//! "Daily Surface Summary of Day" weather data (§6.4). The generators
//! here produce synthetic records with the same schemas and skew
//! characteristics (power-law follower counts, hub-and-spoke airport
//! traffic, per-station temperature series), scaled to run in seconds —
//! the evaluation reports *relative* overheads, which survive scaling.
//!
//! Each module exposes `generate(seed, n)` plus the Pig-style script(s)
//! the paper runs over that data (Fig. 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airline;
pub mod twitter;
pub mod weather;

use cbft_dataflow::Record;

/// A named input data set plus the script(s) run over it — everything a
/// harness needs to set up one of the paper's experiments.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Storage name the script's `LOAD` statements expect.
    pub input_name: &'static str,
    /// The generated records.
    pub records: Vec<Record>,
    /// The script source.
    pub script: &'static str,
    /// Output names the script `STORE`s into.
    pub outputs: &'static [&'static str],
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbft_dataflow::interp::interpret;
    use cbft_dataflow::Script;
    use std::collections::HashMap;

    /// Every bundled workload must parse, compile and interpret cleanly —
    /// the single most important invariant of this crate.
    #[test]
    fn all_workloads_parse_and_interpret() {
        let workloads = [
            twitter::follower_analysis(7, 500),
            twitter::two_hop_analysis(7, 120),
            airline::top_airports(7, 600),
            weather::average_temperature(7, 400),
        ];
        for w in workloads {
            let plan = Script::parse(w.script)
                .unwrap_or_else(|e| panic!("{}: {e}", w.input_name))
                .into_plan();
            let inputs = HashMap::from([(w.input_name.to_owned(), w.records.clone())]);
            let result =
                interpret(&plan, &inputs).unwrap_or_else(|e| panic!("{}: {e}", w.input_name));
            for out in w.outputs {
                assert!(
                    result.output(out).is_some(),
                    "{}: missing output {out}",
                    w.input_name
                );
            }
            let graph = cbft_dataflow::compile::compile_plan(&plan);
            assert!(!graph.is_empty(), "{}", w.input_name);
        }
    }
}
