//! Twitter follower data (§6.1) — schema `(user, follower)`.
//!
//! The Kwak et al. data set is a directed follower graph with a heavily
//! skewed in-degree distribution; we synthesize edges whose *followee*
//! popularity follows a Zipf-like law so GROUP keys are skewed the same
//! way (which is what stresses partitioning and digesting).

use cbft_dataflow::{Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Workload;

/// Storage name used by the scripts.
pub const INPUT: &str = "twitter";

/// Twitter Follower Analysis (Fig. 8(i)): count followers per user.
pub const FOLLOWER_SCRIPT: &str = "
    raw = LOAD 'twitter' AS (user, follower);
    clean = FILTER raw BY follower IS NOT NULL;
    grp = GROUP clean BY user;
    cnt = FOREACH grp GENERATE group AS user, COUNT(clean) AS followers;
    STORE cnt INTO 'follower_counts';
";

/// Twitter Two Hop Analysis (Fig. 8(ii)): pairs of users two hops apart,
/// via a self-join matching a user's followers with their followers.
/// The filter/project/join stages are the digest placements Fig. 10
/// sweeps over (Join, Project, Filter, J&F, J,P&F).
pub const TWO_HOP_SCRIPT: &str = "
    a = LOAD 'twitter' AS (user, follower);
    fa = FILTER a BY follower IS NOT NULL;
    b = LOAD 'twitter' AS (user, follower);
    fb = FILTER b BY follower IS NOT NULL;
    j = JOIN fa BY follower, fb BY user;
    hops = FOREACH j GENERATE fa::user AS user, fb::follower AS twohop;
    dedup = DISTINCT hops;
    STORE dedup INTO 'two_hop_pairs';
";

/// Generates `edges` follower edges over `edges / 10 + 2` users with
/// Zipf-skewed followee popularity. About 2% of rows carry a null
/// follower (the paper's first script filters empty records).
pub fn generate(seed: u64, edges: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = (edges / 10 + 2) as i64;
    (0..edges)
        .map(|_| {
            // Zipf-ish: popularity ∝ 1/rank via inverse-CDF sampling.
            let u: f64 = rng.gen_range(0.0001..1.0f64);
            let followee = ((users as f64).powf(u) - 1.0) as i64 % users;
            let follower = if rng.gen_ratio(1, 50) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(0..users))
            };
            Record::new(vec![Value::Int(followee), follower])
        })
        .collect()
}

/// The Twitter Follower Analysis workload.
pub fn follower_analysis(seed: u64, edges: usize) -> Workload {
    Workload {
        input_name: INPUT,
        records: generate(seed, edges),
        script: FOLLOWER_SCRIPT,
        outputs: &["follower_counts"],
    }
}

/// The Twitter Two Hop Analysis workload. Keep `edges` moderate: the
/// self-join output grows quadratically in hub degree, as it does on the
/// real data set (the paper's Fig. 10 runs take 25+ minutes).
pub fn two_hop_analysis(seed: u64, edges: usize) -> Workload {
    Workload {
        input_name: INPUT,
        records: generate(seed, edges),
        script: TWO_HOP_SCRIPT,
        outputs: &["two_hop_pairs"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(1, 100), generate(1, 100));
        assert_ne!(generate(1, 100), generate(2, 100));
    }

    #[test]
    fn edge_count_and_schema() {
        let edges = generate(3, 500);
        assert_eq!(edges.len(), 500);
        assert!(edges.iter().all(|r| r.arity() == 2));
        let nulls = edges
            .iter()
            .filter(|r| r.get(1) == Some(&Value::Null))
            .count();
        assert!(nulls > 0, "some null followers for the FILTER to drop");
        assert!(nulls < 50, "but only a few");
    }

    #[test]
    fn followee_distribution_is_skewed() {
        let edges = generate(4, 2000);
        let mut counts = std::collections::HashMap::new();
        for r in &edges {
            *counts
                .entry(r.get(0).unwrap().as_int().unwrap())
                .or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let mean = edges.len() as u32 / counts.len() as u32;
        assert!(max > 3 * mean, "hub users exist (max {max} vs mean {mean})");
    }
}
