//! RITA airline on-time data (§6.2) — schema `(origin, dest, month)`.
//!
//! The paper's multi-store query "finds the top 20 airports with respect
//! to incoming flights, outgoing flights, and overall" (Fig. 8(iii)).
//! Synthetic traffic is hub-and-spoke: a few large hubs dominate both
//! directions, as in the real data.

use cbft_dataflow::{Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Workload;

/// Storage name used by the script.
pub const INPUT: &str = "airline";

/// Number of distinct airports in the synthetic network.
pub const AIRPORTS: i64 = 120;

/// The multi-store top-20-airports query (Fig. 8(iii)): three independent
/// branches — outbound, inbound and overall — off one input.
pub const TOP_AIRPORTS_SCRIPT: &str = "
    fl = LOAD 'airline' AS (origin, dest, month);

    go = GROUP fl BY origin;
    outc = FOREACH go GENERATE group AS airport, COUNT(fl) AS n;
    oord = ORDER outc BY n DESC;
    topout = LIMIT oord 20;
    STORE topout INTO 'top_outbound';

    gi = GROUP fl BY dest;
    inc = FOREACH gi GENERATE group AS airport, COUNT(fl) AS n;
    iord = ORDER inc BY n DESC;
    topin = LIMIT iord 20;
    STORE topin INTO 'top_inbound';

    org = FOREACH fl GENERATE origin AS airport;
    dst = FOREACH fl GENERATE dest AS airport;
    both = UNION org, dst;
    gb = GROUP both BY airport;
    allc = FOREACH gb GENERATE group AS airport, COUNT(both) AS n;
    aord = ORDER allc BY n DESC;
    topall = LIMIT aord 20;
    STORE topall INTO 'top_overall';
";

/// Generates `flights` flight records. Airport popularity is cubically
/// skewed toward low ids (P(id < AIRPORTS/4) = 4^(1/3)/... ≈ 0.63), so
/// hubs genuinely dominate and the "top 20" is a stable, meaningful set.
/// A quadratic skew puts exactly half the traffic in the first quartile,
/// which makes hub dominance a coin flip rather than a property.
pub fn generate(seed: u64, flights: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pick_airport = {
        move |rng: &mut StdRng| {
            let x: f64 = rng.gen_range(0.0..1.0);
            Value::Int(((x * x * x) * AIRPORTS as f64) as i64)
        }
    };
    (0..flights)
        .map(|_| {
            let origin = pick_airport(&mut rng);
            let mut dest = pick_airport(&mut rng);
            if dest == origin {
                dest = Value::Int((origin.as_int().unwrap() + 1) % AIRPORTS);
            }
            let month = Value::Int(rng.gen_range(1..=12));
            Record::new(vec![origin, dest, month])
        })
        .collect()
}

/// The IRTA Airline Traffic Analysis workload of §6.2.
pub fn top_airports(seed: u64, flights: usize) -> Workload {
    Workload {
        input_name: INPUT,
        records: generate(seed, flights),
        script: TOP_AIRPORTS_SCRIPT,
        outputs: &["top_outbound", "top_inbound", "top_overall"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = generate(5, 300);
        assert_eq!(a, generate(5, 300));
        assert_eq!(a.len(), 300);
        assert!(a.iter().all(|r| r.arity() == 3));
    }

    #[test]
    fn no_self_loops_and_valid_months() {
        for r in generate(6, 500) {
            assert_ne!(r.get(0), r.get(1), "origin != dest");
            let m = r.get(2).unwrap().as_int().unwrap();
            assert!((1..=12).contains(&m));
        }
    }

    #[test]
    fn hubs_dominate() {
        let flights = generate(7, 3000);
        let low_id = flights
            .iter()
            .filter(|r| r.get(0).unwrap().as_int().unwrap() < AIRPORTS / 4)
            .count();
        assert!(
            low_id * 2 > flights.len(),
            "the first quartile of airports should carry most traffic ({low_id}/3000)"
        );
    }
}
