//! Fault identification and isolation — the fault analyzer of Fig. 7.
//!
//! Every replicated job that returns a commission fault implicates its
//! whole *job cluster* (the set of nodes that executed its tasks): at
//! least one of them is faulty, but which one is initially unknown. The
//! analyzer narrows this down across observations:
//!
//! * **Stage 1** maintains `D`, a family of pairwise-disjoint suspect
//!   sets — each known to contain at least one distinct faulty node. A new
//!   faulty cluster `S` disjoint from all of `D` founds a new set; an `S`
//!   contained in some `Y ∈ D` *refines* it (replacing `Y`, which moves to
//!   the overlap pool `O`); anything else joins `O`.
//! * **Stage 2** runs once `|D| = f`: the system tolerates at most `f`
//!   simultaneous faults, so each set in `D` contains *exactly one* faulty
//!   node and every faulty node lies in `⋃D`. Any observed faulty cluster
//!   `Y ∈ O` intersecting exactly one `X ∈ D` must owe its fault to a node
//!   in `X ∩ Y`, so `X` narrows to the intersection. We iterate to a fixed
//!   point (each narrowing can enable further ones), which is sound for
//!   the same reason each single step is.
//!
//! The published pseudo-code (Fig. 7) is OCR-garbled; this implementation
//! follows the paper's stated intuition, and the property tests assert the
//! key soundness invariant: *a genuinely faulty node is never excluded
//! from its suspect set*.

use std::collections::BTreeSet;

use cbft_mapreduce::NodeId;
use serde::{Deserialize, Serialize};

/// The fault analyzer state (Fig. 7).
///
/// # Examples
///
/// ```
/// use cbft_mapreduce::NodeId;
/// use clusterbft::FaultAnalyzer;
/// use std::collections::BTreeSet;
///
/// let mut fa = FaultAnalyzer::new(1);
/// fa.observe_faulty_cluster([1, 2, 3].map(NodeId).into_iter().collect::<BTreeSet<_>>());
/// fa.observe_faulty_cluster([3, 4].map(NodeId).into_iter().collect::<BTreeSet<_>>());
/// // |D| = f = 1, and {3,4} ∩ {1,2,3} = {3}: node 3 is the suspect.
/// assert_eq!(fa.suspects(), vec![[NodeId(3)].into_iter().collect()]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultAnalyzer {
    f: usize,
    disjoint: Vec<BTreeSet<NodeId>>,
    overlapping: Vec<BTreeSet<NodeId>>,
    observations: u64,
}

impl FaultAnalyzer {
    /// Creates an analyzer for at most `f` simultaneous faults.
    ///
    /// # Panics
    ///
    /// Panics when `f == 0` (nothing to isolate).
    pub fn new(f: usize) -> Self {
        assert!(f > 0, "fault analyzer needs f >= 1");
        FaultAnalyzer {
            f,
            disjoint: Vec::new(),
            overlapping: Vec::new(),
            observations: 0,
        }
    }

    /// The configured fault bound.
    pub fn fault_bound(&self) -> usize {
        self.f
    }

    /// Number of faulty clusters observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Feeds one faulty job cluster (the node set of a replica whose
    /// digests failed verification).
    pub fn observe_faulty_cluster(&mut self, cluster: BTreeSet<NodeId>) {
        if cluster.is_empty() {
            return;
        }
        self.observations += 1;

        // Stage 1. Once |D| = f every fault already lives in ⋃D, so a
        // cluster disjoint from all of D cannot found a new region (it
        // would imply an f+1-th fault); it joins the overlap pool instead.
        if self.disjoint.iter().all(|x| x.is_disjoint(&cluster)) {
            if self.disjoint.len() < self.f {
                self.disjoint.push(cluster);
            } else {
                self.overlapping.push(cluster);
            }
        } else if let Some(i) = self.disjoint.iter().position(|y| cluster.is_subset(y)) {
            if self.disjoint[i] != cluster {
                let old = std::mem::replace(&mut self.disjoint[i], cluster);
                self.overlapping.push(old);
            }
        } else {
            self.overlapping.push(cluster);
        }

        // Stage 2: narrow by intersection once |D| = f.
        if self.disjoint.len() == self.f {
            self.narrow_to_fixpoint();
        }
    }

    fn narrow_to_fixpoint(&mut self) {
        loop {
            let mut changed = false;
            for y in &self.overlapping {
                let hits: Vec<usize> = self
                    .disjoint
                    .iter()
                    .enumerate()
                    .filter(|(_, x)| !x.is_disjoint(y))
                    .map(|(i, _)| i)
                    .collect();
                if let [only] = hits.as_slice() {
                    let narrowed: BTreeSet<NodeId> =
                        self.disjoint[*only].intersection(y).copied().collect();
                    if narrowed.len() < self.disjoint[*only].len() {
                        self.disjoint[*only] = narrowed;
                        changed = true;
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// The current disjoint suspect sets `D` (each contains at least one
    /// faulty node; once [`FaultAnalyzer::converged`], exactly one).
    pub fn suspects(&self) -> Vec<BTreeSet<NodeId>> {
        self.disjoint.clone()
    }

    /// All currently suspected nodes (the union of `D`).
    pub fn suspected_nodes(&self) -> BTreeSet<NodeId> {
        self.disjoint.iter().flatten().copied().collect()
    }

    /// True once `|D| = f`: the suspect count stops growing (§6.3 measures
    /// the number of jobs needed to reach this point, Fig. 11).
    pub fn converged(&self) -> bool {
        self.disjoint.len() == self.f
    }

    /// Nodes isolated down to a singleton suspect set — these are known
    /// faulty (given the fault-bound assumption).
    pub fn isolated_faulty_nodes(&self) -> Vec<NodeId> {
        self.disjoint
            .iter()
            .filter(|s| s.len() == 1)
            .flat_map(|s| s.iter().copied())
            .collect()
    }

    /// Forgets everything about `node` — the administrator re-initialized
    /// it (§4.2), so past evidence no longer applies. Suspect sets that
    /// become empty are dropped (the fault they tracked was the patched
    /// node).
    pub fn clear_node(&mut self, node: NodeId) {
        for set in self.disjoint.iter_mut().chain(self.overlapping.iter_mut()) {
            set.remove(&node);
        }
        self.disjoint.retain(|s| !s.is_empty());
        self.overlapping.retain(|s| !s.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(nodes: &[usize]) -> BTreeSet<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn first_cluster_founds_d() {
        let mut fa = FaultAnalyzer::new(2);
        fa.observe_faulty_cluster(set(&[1, 2, 3]));
        assert_eq!(fa.suspects(), vec![set(&[1, 2, 3])]);
        assert!(!fa.converged());
    }

    #[test]
    fn disjoint_clusters_accumulate() {
        let mut fa = FaultAnalyzer::new(2);
        fa.observe_faulty_cluster(set(&[1, 2]));
        fa.observe_faulty_cluster(set(&[5, 6]));
        assert_eq!(fa.suspects().len(), 2);
        assert!(fa.converged());
    }

    #[test]
    fn subset_refines_in_place() {
        let mut fa = FaultAnalyzer::new(2);
        fa.observe_faulty_cluster(set(&[1, 2, 3, 4]));
        fa.observe_faulty_cluster(set(&[2, 3]));
        assert_eq!(fa.suspects(), vec![set(&[2, 3])]);
    }

    #[test]
    fn intersection_narrows_after_convergence() {
        let mut fa = FaultAnalyzer::new(1);
        fa.observe_faulty_cluster(set(&[1, 2, 3]));
        assert!(fa.converged());
        fa.observe_faulty_cluster(set(&[3, 4, 5]));
        assert_eq!(fa.suspects(), vec![set(&[3])]);
        assert_eq!(fa.isolated_faulty_nodes(), vec![NodeId(3)]);
    }

    #[test]
    fn overlap_with_two_sets_does_not_narrow() {
        let mut fa = FaultAnalyzer::new(2);
        fa.observe_faulty_cluster(set(&[1, 2]));
        fa.observe_faulty_cluster(set(&[5, 6]));
        // Touches both disjoint sets: no information about which.
        fa.observe_faulty_cluster(set(&[2, 5]));
        assert_eq!(fa.suspects(), vec![set(&[1, 2]), set(&[5, 6])]);
    }

    #[test]
    fn fixpoint_cascades() {
        let mut fa = FaultAnalyzer::new(2);
        // Overlap arrives BEFORE convergence; once |D| = 2, stage 2 must
        // revisit it.
        fa.observe_faulty_cluster(set(&[1, 2]));
        fa.observe_faulty_cluster(set(&[2, 3])); // overlaps, goes to O
        fa.observe_faulty_cluster(set(&[7, 8])); // |D| = 2 → narrow
                                                 // {2,3} hits only {1,2} → {2}.
        assert!(fa.suspects().contains(&set(&[2])));
        assert_eq!(fa.isolated_faulty_nodes(), vec![NodeId(2)]);
    }

    #[test]
    fn faulty_node_never_leaves_its_suspect_set() {
        // Soundness under the paper's model: clusters containing the true
        // faulty node (here node 42) can never narrow it away.
        let mut fa = FaultAnalyzer::new(1);
        let clusters = [
            set(&[42, 1, 2, 3]),
            set(&[42, 4, 5]),
            set(&[42, 2, 6]),
            set(&[42, 7]),
        ];
        for c in clusters {
            fa.observe_faulty_cluster(c);
            assert!(
                fa.suspected_nodes().contains(&NodeId(42)),
                "42 must stay suspected"
            );
        }
        assert_eq!(fa.isolated_faulty_nodes(), vec![NodeId(42)]);
    }

    #[test]
    fn empty_cluster_is_ignored() {
        let mut fa = FaultAnalyzer::new(1);
        fa.observe_faulty_cluster(BTreeSet::new());
        assert_eq!(fa.observations(), 0);
        assert!(fa.suspects().is_empty());
    }

    #[test]
    #[should_panic(expected = "f >= 1")]
    fn zero_fault_bound_panics() {
        let _ = FaultAnalyzer::new(0);
    }

    #[test]
    fn duplicate_cluster_is_stable() {
        let mut fa = FaultAnalyzer::new(1);
        fa.observe_faulty_cluster(set(&[1, 2]));
        fa.observe_faulty_cluster(set(&[1, 2]));
        assert_eq!(fa.suspects(), vec![set(&[1, 2])]);
    }
}

#[cfg(test)]
mod clear_tests {
    use super::*;

    fn set(nodes: &[usize]) -> BTreeSet<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn clearing_a_node_drops_empty_sets_and_deconverges() {
        let mut fa = FaultAnalyzer::new(1);
        fa.observe_faulty_cluster(set(&[1, 2]));
        fa.observe_faulty_cluster(set(&[2, 3]));
        assert_eq!(fa.isolated_faulty_nodes(), vec![NodeId(2)]);
        fa.clear_node(NodeId(2));
        assert!(fa.suspects().is_empty(), "patched node's set vanishes");
        assert!(!fa.converged());
        // Fresh evidence starts a new suspect set normally.
        fa.observe_faulty_cluster(set(&[4, 5]));
        assert_eq!(fa.suspects(), vec![set(&[4, 5])]);
    }

    #[test]
    fn clearing_leaves_other_suspects_alone() {
        let mut fa = FaultAnalyzer::new(2);
        fa.observe_faulty_cluster(set(&[1, 2]));
        fa.observe_faulty_cluster(set(&[5, 6]));
        fa.clear_node(NodeId(1));
        assert_eq!(fa.suspects(), vec![set(&[2]), set(&[5, 6])]);
    }
}
