//! The output verifier (§4.1, "Job initiator and verifier").
//!
//! Digest reports stream in from the untrusted tier as tasks complete
//! (§3.3's *offline* comparison: the verifier works while downstream jobs
//! already run). For each correspondence key — (vertex, site, task) — the
//! verifier "compares corresponding digests from different replicas and
//! asserts that at least f + 1 are same".

use std::collections::{BTreeMap, BTreeSet};

use cbft_dataflow::compile::Site;
use cbft_dataflow::VertexId;
use cbft_digest::{ChunkedSummary, Digest, MismatchRange, StreamVerdict};
use cbft_mapreduce::{DigestReport, TaskKind};
use cbft_metrics::{names as metric_names, Domain, Metrics};
use cbft_sim::{SimDuration, SimTime};
use cbft_trace::{TraceEvent, Tracer, QUORUM_EVENT, VERIFIER_PID};
use serde::{Deserialize, Serialize};

/// Correspondence key: replicas' streams with equal keys must digest
/// identically.
pub type DigestKey = (VertexId, Site, TaskKind, usize);

/// A digest report as it crosses the replica-to-verifier channel of the
/// parallel executor: the raw [`DigestReport`] plus the globally unique
/// replica id that produced it and a per-replica sequence number.
///
/// Each replica's simulation is deterministic, so `(uid, seq)` pins the
/// report to one exact position in that replica's event stream no matter
/// which worker thread ran it or how channel messages interleaved.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamedReport {
    /// Globally unique replica id (unique across escalation rounds).
    pub uid: usize,
    /// Position of this report within the replica's own digest stream.
    pub seq: u64,
    /// The digest report.
    pub report: DigestReport,
}

impl StreamedReport {
    /// The canonical transcript ordering key: *(correspondence key,
    /// replica, sequence)*. Sorting any thread interleaving of streamed
    /// reports by this key produces one and the same transcript, which is
    /// what makes the parallel executor's verdict independent of
    /// scheduling.
    pub fn ordering_key(&self) -> (DigestKey, usize, u64) {
        (self.report.correspondence_key(), self.uid, self.seq)
    }
}

/// Verdict for one correspondence key.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyVerdict {
    /// Not enough reports yet to reach `f + 1` agreement, but agreement is
    /// still possible.
    Pending,
    /// At least `f + 1` replicas agree.
    Verified {
        /// The agreed digest.
        digest: Digest,
        /// Replicas that reported it.
        matching: BTreeSet<usize>,
        /// Replicas that reported something else.
        deviant: BTreeSet<usize>,
    },
    /// Agreement has become impossible (too many conflicting reports).
    Mismatch,
}

impl KeyVerdict {
    /// True for [`KeyVerdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, KeyVerdict::Verified { .. })
    }
}

/// One replica's digest report as retained by the verifier: the chunked
/// summary plus the virtual time the replica produced it, so
/// time-to-quorum (verification lag, §6's completion-to-verdict gap) can
/// be computed after the fact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecordedReport {
    /// The replica's chunked digest summary.
    pub summary: ChunkedSummary,
    /// Virtual time the report was produced (the digest event's `at`).
    pub at: SimTime,
}

/// Renders a correspondence key as a compact stable label, used for
/// trace-event arguments and summary rows.
pub fn key_label(key: &DigestKey) -> String {
    let (vertex, site, kind, index) = key;
    format!("v{}/{:?}/{:?}/{}", vertex.0, site, kind, index)
}

/// Collects digest reports for one replica set and decides verification.
///
/// # Examples
///
/// See the integration tests; the verifier is driven by
/// [`ClusterBft`](crate::ClusterBft) from engine events.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Verifier {
    f: usize,
    expected_replicas: usize,
    table: BTreeMap<DigestKey, BTreeMap<usize, RecordedReport>>,
}

impl Verifier {
    /// Creates a verifier for `expected_replicas` replicas tolerating `f`
    /// faults.
    pub fn new(f: usize, expected_replicas: usize) -> Self {
        Verifier {
            f,
            expected_replicas,
            table: BTreeMap::new(),
        }
    }

    /// Updates the expected replica count — grows when later attempts add
    /// fresh replicas whose digests join the earlier ones.
    pub fn set_expected(&mut self, expected_replicas: usize) {
        self.expected_replicas = expected_replicas;
    }

    /// Records one digest report. Quorum matching uses the combined digest
    /// (equivalent to comparing every chunk); the full summaries are kept
    /// so divergence can be localized to a chunk (§3.3/§6.4: finer
    /// granularity `d` buys a smaller recomputation window).
    pub fn record(&mut self, report: &DigestReport) {
        self.table
            .entry(report.correspondence_key())
            .or_default()
            .insert(
                report.replica,
                RecordedReport {
                    summary: report.summary.clone(),
                    at: report.at,
                },
            );
    }

    /// Streaming ingest: records a report from the parallel executor's
    /// channel under its globally unique replica id and returns the key's
    /// verdict *after* insertion, so callers can react (early-cancel,
    /// escalate) while sibling replicas are still executing.
    ///
    /// Ingest order does not matter: the verdict reached once all reports
    /// are in is the same for every interleaving, because the table is
    /// keyed — not ordered — storage.
    pub fn ingest(&mut self, streamed: &StreamedReport) -> KeyVerdict {
        let key = streamed.report.correspondence_key();
        self.table.entry(key).or_default().insert(
            streamed.uid,
            RecordedReport {
                summary: streamed.report.summary.clone(),
                at: streamed.report.at,
            },
        );
        self.verdict(&key)
    }

    /// [`Verifier::ingest`] plus a live trace instant on the verifier
    /// track. The instant is *non-canonical*: which ingest flips a key's
    /// verdict depends on channel arrival order, so it is excluded from
    /// determinism comparisons; the deterministic quorum timeline comes
    /// from [`Verifier::emit_quorum_events`] at end of run.
    pub fn ingest_traced(&mut self, streamed: &StreamedReport, tracer: &Tracer) -> KeyVerdict {
        let verdict = self.ingest(streamed);
        if tracer.enabled() {
            let state = match &verdict {
                KeyVerdict::Pending => "pending",
                KeyVerdict::Verified { .. } => "verified",
                KeyVerdict::Mismatch => "mismatch",
            };
            tracer.emit(
                TraceEvent::instant("report_ingested", "verifier")
                    .on(VERIFIER_PID, 0)
                    .at_sim(streamed.report.at.as_micros())
                    .seq(streamed.seq)
                    .arg("uid", streamed.uid)
                    .arg("key", key_label(&streamed.report.correspondence_key()))
                    .arg("verdict", state)
                    .non_canonical(),
            );
        }
        verdict
    }

    /// Emits one canonical [`QUORUM_EVENT`] instant per verified key,
    /// computed from the *final* table state: the quorum time is the
    /// virtual time of the `(f+1)`-th earliest matching report, and the
    /// lag is measured from the key's first report of any kind. Both are
    /// functions of the table contents alone, so the emitted events are
    /// identical for every thread count and channel interleaving.
    pub fn emit_quorum_events(&self, tracer: &Tracer) {
        if !tracer.enabled() {
            return;
        }
        for key in self.table.keys() {
            if let Some(quorum_at) = self.quorum_time(key) {
                let lag = self.verification_lag(key).unwrap_or(SimDuration::ZERO);
                tracer.emit(
                    TraceEvent::instant(QUORUM_EVENT, "verifier")
                        .on(VERIFIER_PID, 0)
                        .at_sim(quorum_at.as_micros())
                        .arg("key", key_label(key))
                        .arg("lag_us", lag.as_micros()),
                );
            }
        }
    }

    /// Records the verifier's forensics into a metrics hub, computed —
    /// like [`Verifier::emit_quorum_events`] — from the *final* table
    /// state, so every sample is sim-domain deterministic:
    ///
    /// - a report→quorum lag histogram per verified key
    ///   (`cbft_verification_lag_us{key}`),
    /// - per-replica report counts (`cbft_replica_reports_total`),
    /// - per-replica quorum contradictions
    ///   (`cbft_replica_mismatches_total`),
    /// - per-replica unresolved-conflict parties
    ///   (`cbft_replica_conflicts_total`): keys stuck in
    ///   [`KeyVerdict::Mismatch`], where no quorum assigns blame but the
    ///   reporter set provably contains a faulty replica, and
    /// - per-replica missed keys (`cbft_replica_omissions_total`): keys
    ///   where sibling replicas reported but this one stayed silent.
    pub fn record_metrics(&self, metrics: &Metrics) {
        if !metrics.enabled() {
            return;
        }
        for key in self.table.keys() {
            if self.quorum_time(key).is_some() {
                let lag = self.verification_lag(key).unwrap_or(SimDuration::ZERO);
                metrics.observe(
                    Domain::Sim,
                    metric_names::VERIFICATION_LAG_US,
                    &[("key", key_label(key).into())],
                    lag.as_micros(),
                );
            }
            // Merkle mismatch localization (satellite of §6.4's granular
            // digests): whenever any replica pair disagrees at this key —
            // a named deviant or an unresolved conflict alike — publish
            // the narrowed chunk/record window so the health report can
            // bound the recomputation span.
            if let Some(range) = self.divergence_range(key) {
                let labels = [("key", key_label(key).into())];
                metrics.gauge_set(
                    Domain::Sim,
                    metric_names::DIVERGENCE_FIRST_CHUNK,
                    &labels,
                    range.first_chunk as u64,
                );
                metrics.gauge_set(
                    Domain::Sim,
                    metric_names::DIVERGENCE_LAST_CHUNK,
                    &labels,
                    range.last_chunk as u64,
                );
                metrics.gauge_set(
                    Domain::Sim,
                    metric_names::DIVERGENCE_FIRST_RECORD,
                    &labels,
                    range.first_record,
                );
                metrics.gauge_set(
                    Domain::Sim,
                    metric_names::DIVERGENCE_LAST_RECORD,
                    &labels,
                    range.last_record,
                );
            }
            match self.verdict(key) {
                KeyVerdict::Verified { deviant, .. } => {
                    for replica in deviant {
                        metrics.add(
                            Domain::Sim,
                            metric_names::REPLICA_MISMATCHES,
                            &[("replica", replica.into())],
                            1,
                        );
                    }
                }
                // An unresolved conflict never forms a quorum, so no
                // single side can be blamed — but the set of reporters
                // provably contains a faulty replica (§4.2 fault sets).
                // Without this charge, a Byzantine replica in a
                // quorumless run escapes the health report entirely
                // while its crashed siblings are named. Recording runs
                // at end-of-run, so the closed-world reading applies to
                // `Pending` keys too: replicas that never reported are
                // never going to.
                KeyVerdict::Mismatch | KeyVerdict::Pending => {
                    for replica in self.conflict_parties(key) {
                        metrics.add(
                            Domain::Sim,
                            metric_names::REPLICA_CONFLICTS,
                            &[("replica", replica.into())],
                            1,
                        );
                    }
                }
            }
        }
        for replica in self.seen_replicas() {
            let mut reports = 0u64;
            let mut missed = 0u64;
            for key_reports in self.table.values() {
                if key_reports.contains_key(&replica) {
                    reports += 1;
                } else {
                    missed += 1;
                }
            }
            metrics.add(
                Domain::Sim,
                metric_names::REPLICA_REPORTS,
                &[("replica", replica.into())],
                reports,
            );
            if missed > 0 {
                metrics.add(
                    Domain::Sim,
                    metric_names::REPLICA_OMISSIONS,
                    &[("replica", replica.into())],
                    missed,
                );
            }
        }
    }

    /// Number of correspondence keys seen so far.
    pub fn keys_seen(&self) -> usize {
        self.table.len()
    }

    /// All keys recorded so far.
    pub fn keys(&self) -> impl Iterator<Item = &DigestKey> {
        self.table.keys()
    }

    /// The verdict for one key.
    pub fn verdict(&self, key: &DigestKey) -> KeyVerdict {
        let Some(reports) = self.table.get(key) else {
            return KeyVerdict::Pending;
        };
        let mut counts: BTreeMap<Digest, BTreeSet<usize>> = BTreeMap::new();
        for (&replica, rec) in reports {
            counts
                .entry(rec.summary.combined())
                .or_default()
                .insert(replica);
        }
        if let Some((digest, matching)) = counts
            .iter()
            .find(|(_, replicas)| replicas.len() > self.f)
            .map(|(d, r)| (*d, r.clone()))
        {
            let deviant = reports
                .iter()
                .filter(|(_, rec)| rec.summary.combined() != digest)
                .map(|(r, _)| *r)
                .collect();
            return KeyVerdict::Verified {
                digest,
                matching,
                deviant,
            };
        }
        let best = counts.values().map(BTreeSet::len).max().unwrap_or(0);
        let missing = self.expected_replicas.saturating_sub(reports.len());
        if best + missing > self.f {
            KeyVerdict::Pending
        } else {
            KeyVerdict::Mismatch
        }
    }

    /// Replicas that contradict an established quorum at any key — the
    /// commission-faulty replicas.
    pub fn deviant_replicas(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for key in self.table.keys() {
            if let KeyVerdict::Verified { deviant, .. } = self.verdict(key) {
                out.extend(deviant);
            }
        }
        out
    }

    /// The parties to an unresolved digest conflict at `key`, under a
    /// closed-world (end-of-run) reading: at least two distinct digests
    /// were reported and none reached an `f + 1` quorum. Empty when the
    /// key is verified or has at most one digest value (a lone stream
    /// cannot implicate anyone).
    fn conflict_parties(&self, key: &DigestKey) -> Vec<usize> {
        let Some(reports) = self.table.get(key) else {
            return Vec::new();
        };
        let mut counts: BTreeMap<Digest, usize> = BTreeMap::new();
        for rec in reports.values() {
            *counts.entry(rec.summary.combined()).or_default() += 1;
        }
        if counts.len() < 2 || counts.values().any(|&n| n > self.f) {
            return Vec::new();
        }
        reports.keys().copied().collect()
    }

    /// Replicas party to an unresolved digest conflict: reporters at a
    /// key where distinct digests disagree and no quorum ever formed
    /// (closed-world — a still-`Pending` key at end of run counts). No
    /// member can be individually blamed, but each such key's reporter
    /// set contains at least one faulty replica — the §4.2 fault sets
    /// the analyzer intersects. Campaign oracles use this with
    /// [`Verifier::deviant_replicas`] to check that every manifest
    /// injected fault is named by the forensics.
    pub fn conflict_replicas(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for key in self.table.keys() {
            out.extend(self.conflict_parties(key));
        }
        out
    }

    /// Every replica id that has reported at least one digest. This is
    /// the candidate set for cleanliness: the parallel executor ingests
    /// under globally unique uids (renumbered across escalation rounds),
    /// so replica ids are *not* `0..expected_replicas`.
    pub fn seen_replicas(&self) -> BTreeSet<usize> {
        self.table
            .values()
            .flat_map(|reports| reports.keys().copied())
            .collect()
    }

    /// Replicas that agree with the quorum at every key they reported
    /// (candidates for publishing / trusting intermediates).
    ///
    /// Derived from the replicas actually present in the table — never
    /// from the nominal `0..expected_replicas` range, which would invent
    /// "clean" ids that no report ever carried — and always disjoint from
    /// [`Verifier::deviant_replicas`].
    pub fn clean_replicas(&self) -> BTreeSet<usize> {
        let deviants = self.deviant_replicas();
        self.seen_replicas()
            .into_iter()
            .filter(|r| !deviants.contains(r))
            .collect()
    }

    /// Virtual time at which `key` reached its `f + 1` matching quorum:
    /// the `(f+1)`-th earliest `at` among the reports matching the
    /// verified digest. `None` while the key is unverified.
    pub fn quorum_time(&self, key: &DigestKey) -> Option<SimTime> {
        let KeyVerdict::Verified { matching, .. } = self.verdict(key) else {
            return None;
        };
        let reports = self.table.get(key)?;
        let mut times: Vec<SimTime> = matching
            .iter()
            .filter_map(|r| reports.get(r).map(|rec| rec.at))
            .collect();
        times.sort();
        times.get(self.f).copied()
    }

    /// Virtual time of the first report (matching or not) for `key`.
    pub fn first_report_time(&self, key: &DigestKey) -> Option<SimTime> {
        self.table.get(key)?.values().map(|rec| rec.at).min()
    }

    /// Verification lag for `key`: virtual time from its first report to
    /// its quorum. `None` while the key is unverified.
    pub fn verification_lag(&self, key: &DigestKey) -> Option<SimDuration> {
        let quorum = self.quorum_time(key)?;
        let first = self.first_report_time(key)?;
        Some(quorum.since(first))
    }

    /// True when replica `r` agrees with a verified quorum at every key in
    /// `keys` (all of which must be verified).
    pub fn replica_verified_at<'a>(
        &self,
        r: usize,
        keys: impl IntoIterator<Item = &'a DigestKey>,
    ) -> bool {
        keys.into_iter().all(|k| match self.verdict(k) {
            KeyVerdict::Verified { matching, .. } => matching.contains(&r),
            _ => false,
        })
    }

    /// Whether every recorded key is verified.
    pub fn all_keys_verified(&self) -> bool {
        self.table.keys().all(|k| self.verdict(k).is_verified())
    }

    /// Keys currently in mismatch.
    pub fn mismatched_keys(&self) -> Vec<DigestKey> {
        self.table
            .keys()
            .filter(|k| matches!(self.verdict(k), KeyVerdict::Mismatch))
            .copied()
            .collect()
    }

    /// The first chunk at which replicas' streams diverge at `key` — the
    /// recomputation window starts there. `None` when the key has no
    /// disagreement (or only one report).
    pub fn divergence_chunk(&self, key: &DigestKey) -> Option<usize> {
        let reports = self.table.get(key)?;
        let mut min_chunk: Option<usize> = None;
        let summaries: Vec<&ChunkedSummary> = reports.values().map(|rec| &rec.summary).collect();
        for i in 0..summaries.len() {
            for j in (i + 1)..summaries.len() {
                if let StreamVerdict::DivergedAt { chunk } = summaries[i].compare(summaries[j]) {
                    min_chunk = Some(min_chunk.map_or(chunk, |m| m.min(chunk)));
                }
            }
        }
        min_chunk
    }

    /// The earliest divergence chunk across every disagreeing key.
    pub fn earliest_divergence(&self) -> Option<usize> {
        self.table
            .keys()
            .filter_map(|k| self.divergence_chunk(k))
            .min()
    }

    /// The chunk/record window implicated at `key`, localized by Merkle
    /// descent ([`ChunkedSummary::localize`], O(log n) digest comparisons
    /// per replica pair instead of a linear chunk scan). The union over
    /// every disagreeing pair: streams provably agree outside it, so the
    /// §6.4 recomputation window shrinks to `first_record..=last_record`.
    /// `None` when no pair disagrees (or only one report exists).
    pub fn divergence_range(&self, key: &DigestKey) -> Option<MismatchRange> {
        let reports = self.table.get(key)?;
        let summaries: Vec<&ChunkedSummary> = reports.values().map(|rec| &rec.summary).collect();
        let mut merged: Option<MismatchRange> = None;
        for i in 0..summaries.len() {
            for j in (i + 1)..summaries.len() {
                let Some(range) = summaries[i].localize(summaries[j]) else {
                    continue;
                };
                merged = Some(match merged {
                    None => range,
                    Some(m) => MismatchRange {
                        first_chunk: m.first_chunk.min(range.first_chunk),
                        last_chunk: m.last_chunk.max(range.last_chunk),
                        first_record: m.first_record.min(range.first_record),
                        last_record: m.last_record.max(range.last_record),
                        chunks: m.chunks.max(range.chunks),
                        records: m.records.max(range.records),
                    },
                });
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbft_dataflow::compile::JobId;
    use cbft_digest::ChunkedDigest;
    use cbft_sim::SimTime;

    fn report_at(replica: usize, payload: &[u8], at_us: u64) -> DigestReport {
        let mut cd = ChunkedDigest::whole_stream();
        cd.append(payload);
        DigestReport {
            handle: cbft_mapreduce::RunHandle::from_raw(0),
            sid: "s".into(),
            replica,
            vertex: VertexId(3),
            site: Site::Shuffle { job: JobId(0) },
            kind: TaskKind::Reduce,
            task_index: 0,
            summary: cd.finish(),
            at: SimTime::from_micros(at_us),
        }
    }

    fn report(replica: usize, payload: &[u8]) -> DigestReport {
        report_at(replica, payload, 0)
    }

    fn key() -> DigestKey {
        (
            VertexId(3),
            Site::Shuffle { job: JobId(0) },
            TaskKind::Reduce,
            0,
        )
    }

    #[test]
    fn quorum_verifies() {
        let mut v = Verifier::new(1, 4);
        v.record(&report(0, b"good"));
        assert_eq!(v.verdict(&key()), KeyVerdict::Pending);
        v.record(&report(1, b"good"));
        match v.verdict(&key()) {
            KeyVerdict::Verified {
                matching, deviant, ..
            } => {
                assert_eq!(matching, BTreeSet::from([0, 1]));
                assert!(deviant.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deviant_detected_alongside_quorum() {
        let mut v = Verifier::new(1, 3);
        v.record(&report(0, b"good"));
        v.record(&report(1, b"bad"));
        v.record(&report(2, b"good"));
        match v.verdict(&key()) {
            KeyVerdict::Verified { deviant, .. } => {
                assert_eq!(deviant, BTreeSet::from([1]))
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(v.deviant_replicas(), BTreeSet::from([1]));
        assert_eq!(v.clean_replicas(), BTreeSet::from([0, 2]));
    }

    #[test]
    fn mismatch_when_agreement_impossible() {
        let mut v = Verifier::new(1, 2);
        v.record(&report(0, b"a"));
        assert_eq!(
            v.verdict(&key()),
            KeyVerdict::Pending,
            "replica 1 could still agree"
        );
        v.record(&report(1, b"b"));
        assert_eq!(
            v.verdict(&key()),
            KeyVerdict::Mismatch,
            "1-vs-1 with f=1 can never quorum"
        );
        assert_eq!(v.mismatched_keys().len(), 1);
    }

    #[test]
    fn pending_while_reports_outstanding() {
        let mut v = Verifier::new(1, 4);
        v.record(&report(0, b"a"));
        v.record(&report(1, b"b"));
        // 2 missing replicas could still join either side.
        assert_eq!(v.verdict(&key()), KeyVerdict::Pending);
    }

    #[test]
    fn replica_verified_at_requires_membership() {
        let mut v = Verifier::new(1, 3);
        v.record(&report(0, b"x"));
        v.record(&report(1, b"x"));
        v.record(&report(2, b"y"));
        let k = key();
        assert!(v.replica_verified_at(0, [&k]));
        assert!(!v.replica_verified_at(2, [&k]));
        assert!(v.all_keys_verified());
    }

    #[test]
    fn unknown_key_is_pending() {
        let v = Verifier::new(1, 4);
        assert_eq!(v.verdict(&key()), KeyVerdict::Pending);
        assert_eq!(v.keys_seen(), 0);
    }

    #[test]
    fn ingest_returns_live_verdict_and_matches_record() {
        let mut streamed = Verifier::new(1, 3);
        let sr = |uid: usize, payload: &[u8]| StreamedReport {
            uid,
            seq: 0,
            report: report(uid, payload),
        };
        assert_eq!(streamed.ingest(&sr(0, b"good")), KeyVerdict::Pending);
        let verdict = streamed.ingest(&sr(1, b"good"));
        assert!(verdict.is_verified(), "{verdict:?}");

        let mut recorded = Verifier::new(1, 3);
        recorded.record(&report(0, b"good"));
        recorded.record(&report(1, b"good"));
        assert_eq!(streamed, recorded, "ingest and record build the same table");
    }

    #[test]
    fn ingest_uses_the_streamed_uid() {
        // The channel wrapper's uid wins even if the inner report disagrees
        // (fresh escalation rounds re-number replicas globally).
        let mut v = Verifier::new(1, 3);
        v.ingest(&StreamedReport {
            uid: 7,
            seq: 0,
            report: report(0, b"x"),
        });
        v.ingest(&StreamedReport {
            uid: 8,
            seq: 0,
            report: report(0, b"x"),
        });
        match v.verdict(&key()) {
            KeyVerdict::Verified { matching, .. } => {
                assert_eq!(matching, BTreeSet::from([7, 8]))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_replicas_only_contains_replicas_that_reported() {
        // Regression: the parallel executor ingests under globally
        // unique uids (renumbered across escalation rounds, e.g. 3..6 in
        // round two); the old implementation enumerated
        // 0..expected_replicas and reported never-seen ids as "clean".
        let mut v = Verifier::new(1, 3);
        for uid in [3usize, 4, 5] {
            v.ingest(&StreamedReport {
                uid,
                seq: 0,
                report: report(0, if uid == 5 { b"bad" } else { b"good" }),
            });
        }
        assert_eq!(v.seen_replicas(), BTreeSet::from([3, 4, 5]));
        assert_eq!(v.deviant_replicas(), BTreeSet::from([5]));
        assert_eq!(
            v.clean_replicas(),
            BTreeSet::from([3, 4]),
            "clean is seen-minus-deviant, not a 0..n enumeration"
        );
        assert!(v.clean_replicas().is_disjoint(&v.deviant_replicas()));
    }

    #[test]
    fn clean_replicas_empty_before_any_report() {
        let v = Verifier::new(1, 4);
        assert!(
            v.clean_replicas().is_empty(),
            "no report, no cleanliness claim"
        );
    }

    #[test]
    fn quorum_time_is_the_f_plus_first_matching_report() {
        let mut v = Verifier::new(1, 3);
        v.record(&report_at(0, b"good", 50));
        v.record(&report_at(1, b"bad", 10)); // deviant arrives first
        v.record(&report_at(2, b"good", 30));
        let k = key();
        // Matching replicas report at 30us and 50us; the quorum needs
        // f + 1 = 2 of them, so it completes at 50us. Lag is measured
        // from the key's very first report (the deviant at 10us).
        assert_eq!(v.quorum_time(&k), Some(SimTime::from_micros(50)));
        assert_eq!(v.first_report_time(&k), Some(SimTime::from_micros(10)));
        assert_eq!(v.verification_lag(&k), Some(SimDuration::from_micros(40)));
    }

    #[test]
    fn quorum_time_none_while_unverified() {
        let mut v = Verifier::new(1, 3);
        v.record(&report_at(0, b"x", 5));
        assert_eq!(v.quorum_time(&key()), None);
        assert_eq!(v.verification_lag(&key()), None);
    }

    #[test]
    fn quorum_events_are_deterministic_across_ingest_orders() {
        use cbft_trace::{canonicalize, TraceSummary, Tracer};

        let sr = |uid: usize, payload: &[u8], at_us: u64| StreamedReport {
            uid,
            seq: 0,
            report: report_at(0, payload, at_us),
        };
        let reports = [sr(0, b"good", 50), sr(1, b"bad", 10), sr(2, b"good", 30)];

        let mut canon = Vec::new();
        for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
            let mut v = Verifier::new(1, 3);
            let (tracer, sink) = Tracer::memory();
            for i in order {
                v.ingest_traced(&reports[i], &tracer);
            }
            v.emit_quorum_events(&tracer);
            canon.push(canonicalize(&sink.take()));
        }
        assert_eq!(canon[0], canon[1]);
        assert_eq!(canon[1], canon[2]);
        // Live ingest instants are non-canonical; only the quorum
        // instant survives into the canonical trace.
        assert_eq!(canon[0].len(), 1);
        assert_eq!(canon[0][0].name, "quorum");
        assert_eq!(canon[0][0].sim_us, 50);

        // And the summary extracts the per-key lag from it.
        let mut v = Verifier::new(1, 3);
        let (tracer, sink) = Tracer::memory();
        for r in &reports {
            v.ingest_traced(r, &tracer);
        }
        v.emit_quorum_events(&tracer);
        let summary = TraceSummary::from_events(&sink.take());
        assert_eq!(summary.key_lags.len(), 1);
        assert_eq!(summary.key_lags[0].lag_us, 40);
        assert_eq!(summary.key_lags[0].quorum_sim_us, 50);
    }

    #[test]
    fn ordering_key_is_interleaving_independent() {
        let mk = |uid: usize, seq: u64, payload: &[u8]| StreamedReport {
            uid,
            seq,
            report: report(uid, payload),
        };
        let mut a = vec![
            mk(1, 1, b"x"),
            mk(0, 0, b"x"),
            mk(0, 1, b"y"),
            mk(1, 0, b"z"),
        ];
        let mut b = vec![
            mk(0, 1, b"y"),
            mk(1, 0, b"z"),
            mk(1, 1, b"x"),
            mk(0, 0, b"x"),
        ];
        a.sort_by_key(StreamedReport::ordering_key);
        b.sort_by_key(StreamedReport::ordering_key);
        assert_eq!(a, b, "any arrival order sorts to one canonical transcript");
    }
}

#[cfg(test)]
mod divergence_tests {
    use super::*;
    use cbft_dataflow::compile::JobId;
    use cbft_digest::ChunkedDigest;
    use cbft_sim::SimTime;

    fn report_chunked(replica: usize, records: &[&[u8]], granularity: usize) -> DigestReport {
        let mut cd = ChunkedDigest::new(granularity);
        for r in records {
            cd.append(r);
        }
        DigestReport {
            handle: cbft_mapreduce::RunHandle::from_raw(0),
            sid: "s".into(),
            replica,
            vertex: VertexId(1),
            site: Site::Shuffle { job: JobId(0) },
            kind: TaskKind::Reduce,
            task_index: 0,
            summary: cd.finish(),
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn fine_granularity_localizes_the_corruption() {
        let good: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"e", b"f"];
        let bad: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"X", b"f"];
        let key = (
            VertexId(1),
            Site::Shuffle { job: JobId(0) },
            TaskKind::Reduce,
            0,
        );

        // Granularity 2: record 4 corrupt → chunk 2.
        let mut v = Verifier::new(1, 2);
        v.record(&report_chunked(0, &good, 2));
        v.record(&report_chunked(1, &bad, 2));
        assert_eq!(v.divergence_chunk(&key), Some(2));
        assert_eq!(v.earliest_divergence(), Some(2));

        // Whole-stream digests only say "somewhere" (chunk 0).
        let mut coarse = Verifier::new(1, 2);
        coarse.record(&report_chunked(0, &good, usize::MAX));
        coarse.record(&report_chunked(1, &bad, usize::MAX));
        assert_eq!(coarse.divergence_chunk(&key), Some(0));
    }

    #[test]
    fn merkle_localization_narrows_the_record_window() {
        use cbft_metrics::{HealthReport, Metrics};

        let good: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"e", b"f"];
        let bad: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"X", b"f"];
        let key = (
            VertexId(1),
            Site::Shuffle { job: JobId(0) },
            TaskKind::Reduce,
            0,
        );

        // Granularity 2: record 4 corrupt → chunk 2 → records 4..=5.
        let mut v = Verifier::new(1, 2);
        v.record(&report_chunked(0, &good, 2));
        v.record(&report_chunked(1, &bad, 2));
        let range = v.divergence_range(&key).expect("streams diverge");
        assert_eq!((range.first_chunk, range.last_chunk), (2, 2));
        assert_eq!((range.first_record, range.last_record), (4, 5));

        // The range flows through record_metrics into the health report.
        let metrics = Metrics::new();
        v.record_metrics(&metrics);
        let report = HealthReport::from_snapshot(&metrics.snapshot());
        let spans = report.divergence_spans();
        assert_eq!(spans.len(), 1);
        let (label, span) = spans.iter().next().unwrap();
        assert_eq!(label, &key_label(&key));
        assert_eq!((span.first_chunk, span.last_chunk), (2, 2));
        assert_eq!((span.first_record, span.last_record), (4, 5));
        assert!(report
            .render()
            .contains("mismatch localization (merkle descent):"));

        // Agreement emits no localization gauges at all.
        let mut agree = Verifier::new(1, 2);
        agree.record(&report_chunked(0, &good, 2));
        agree.record(&report_chunked(1, &good, 2));
        assert_eq!(agree.divergence_range(&key), None);
        let m2 = Metrics::new();
        agree.record_metrics(&m2);
        assert!(HealthReport::from_snapshot(&m2.snapshot())
            .divergence_spans()
            .is_empty());
    }

    #[test]
    fn divergence_range_unions_disagreeing_pairs() {
        let key = (
            VertexId(1),
            Site::Shuffle { job: JobId(0) },
            TaskKind::Reduce,
            0,
        );
        let base: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"e", b"f"];
        let early: Vec<&[u8]> = vec![b"X", b"b", b"c", b"d", b"e", b"f"];
        let late: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"e", b"Y"];
        let mut v = Verifier::new(1, 3);
        v.record(&report_chunked(0, &base, 2));
        v.record(&report_chunked(1, &early, 2)); // chunk 0
        v.record(&report_chunked(2, &late, 2)); // chunk 2
        let range = v.divergence_range(&key).expect("streams diverge");
        assert_eq!((range.first_chunk, range.last_chunk), (0, 2));
        assert_eq!((range.first_record, range.last_record), (0, 5));
    }

    #[test]
    fn agreement_has_no_divergence() {
        let recs: Vec<&[u8]> = vec![b"a", b"b"];
        let key = (
            VertexId(1),
            Site::Shuffle { job: JobId(0) },
            TaskKind::Reduce,
            0,
        );
        let mut v = Verifier::new(1, 2);
        v.record(&report_chunked(0, &recs, 1));
        v.record(&report_chunked(1, &recs, 1));
        assert_eq!(v.divergence_chunk(&key), None);
        assert_eq!(v.earliest_divergence(), None);
    }
}
