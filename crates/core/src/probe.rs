//! Probe jobs — active fault isolation (§3.3, §4.2).
//!
//! The separation of duty lets the front-end "use specific deployment
//! policies to narrow down the (set of) faulty node(s) ... Similarly,
//! dummy jobs can be used to further probe nodes in such a suspicious
//! replication group." A probe run constrains scheduling to the current
//! suspects plus a small pool of helpers and executes tiny known
//! data-flow jobs; every digest mismatch feeds the fault analyzer another
//! cluster to intersect, accelerating isolation without waiting for real
//! workload traffic.

use cbft_dataflow::{Record, Value};
use cbft_mapreduce::NodeId;
use serde::{Deserialize, Serialize};

use crate::config::{Replication, VpPolicy};
use crate::outcome::SubmitError;
use crate::pipeline::ClusterBft;

/// Result of a probing campaign.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeReport {
    /// Probe scripts executed.
    pub probes_run: u32,
    /// Nodes isolated to singleton suspect sets after probing.
    pub isolated: Vec<NodeId>,
    /// Total nodes still under suspicion.
    pub remaining_suspects: usize,
}

impl ClusterBft {
    /// Runs up to `max_probes` dummy jobs with scheduling constrained to
    /// the analyzer's suspect sets (plus clean helpers), stopping early
    /// once every suspect set is a singleton.
    ///
    /// Probes use `f + 1` replicas and final-output digests only: the goal
    /// is not a verified result but more *observations* — every mismatch
    /// hands the analyzer a small cluster to intersect with.
    ///
    /// # Errors
    ///
    /// Propagates storage/engine errors from probe submission. A probe
    /// that ends unverified is *not* an error (that is a successful
    /// detection).
    pub fn probe_suspects(&mut self, max_probes: u32) -> Result<ProbeReport, SubmitError> {
        let mut probes_run = 0;
        for _ in 0..max_probes {
            let Some(analyzer) = self.fault_analyzer() else {
                break;
            };
            let suspects = analyzer.suspected_nodes();
            let unresolved: Vec<NodeId> = analyzer
                .suspects()
                .iter()
                .filter(|s| s.len() > 1)
                .flatten()
                .copied()
                .collect();
            if unresolved.is_empty() {
                break;
            }
            // Target ONE member of an unresolved set per probe, excluding
            // every other suspect: helpers outside ⋃D are provably clean
            // once |D| = f, so a digest mismatch convicts the target, and
            // the observed cluster (target + helpers) lets the analyzer
            // intersect the other suspects away.
            let target = unresolved[probes_run as usize % unresolved.len()];

            let node_count = self.cluster().node_count();
            let helper_target = (node_count / 3).max(6).min(node_count);
            let mut keep: std::collections::BTreeSet<NodeId> = std::iter::once(target).collect();
            for i in 0..node_count {
                if keep.len() > helper_target {
                    break;
                }
                let node = NodeId(i);
                if !suspects.contains(&node) && !self.cluster().node_excluded(node) {
                    keep.insert(node);
                }
            }
            let previously_excluded: Vec<NodeId> = (0..node_count)
                .map(NodeId)
                .filter(|n| self.cluster().node_excluded(*n))
                .collect();
            for i in 0..node_count {
                let node = NodeId(i);
                self.cluster_mut()
                    .set_node_excluded(node, !keep.contains(&node));
            }

            let result = self.run_one_probe(probes_run);

            // Restore the previous exclusion state.
            for i in 0..node_count {
                let node = NodeId(i);
                self.cluster_mut()
                    .set_node_excluded(node, previously_excluded.contains(&node));
            }
            result?;
            probes_run += 1;
        }

        let (isolated, remaining_suspects) = match self.fault_analyzer() {
            Some(a) => (a.isolated_faulty_nodes(), a.suspected_nodes().len()),
            None => (Vec::new(), 0),
        };
        Ok(ProbeReport {
            probes_run,
            isolated,
            remaining_suspects,
        })
    }

    /// One dummy job: a tiny group-and-count over synthetic records with a
    /// unique namespace, executed with probe-tuned settings.
    fn run_one_probe(&mut self, index: u32) -> Result<(), SubmitError> {
        let tag = format!("cbftprobe{index}_{}", self.probe_counter());
        let records: Vec<Record> = (0..256)
            .map(|i| Record::new(vec![Value::Int(i % 16), Value::Int(i)]))
            .collect();
        self.cluster_mut()
            .storage_mut()
            .write(&format!("{tag}_in"), records)?;
        let script = format!(
            "a = LOAD '{tag}_in' AS (k, v);
             g = GROUP a BY k;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO '{tag}_out';"
        );
        // Probe with minimal replication and a single attempt: detection,
        // not a verified answer, is the goal.
        let saved = self.config().clone();
        let probe_config = crate::config::JobConfig {
            replication: Replication::Optimistic,
            vp_policy: VpPolicy::FinalOnly,
            map_split_records: 32,
            reduce_tasks: 2,
            max_attempts: 1,
            ..saved.clone()
        };
        self.set_config(probe_config);
        let result = self.submit_script(&script);
        self.set_config(saved);
        result.map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobConfig;
    use cbft_mapreduce::{Behavior, Cluster};

    #[test]
    fn probing_isolates_a_hidden_faulty_node() {
        let cluster = Cluster::builder()
            .nodes(12)
            .slots_per_node(3)
            .seed(7)
            .node_behavior(4, Behavior::Commission { probability: 1.0 })
            .build();
        let mut cbft = ClusterBft::new(
            cluster,
            JobConfig::builder()
                .expected_failures(1)
                .replication(crate::config::Replication::Full)
                .vp_policy(VpPolicy::Marked(1))
                .map_split_records(64)
                .build(),
        );
        // One real workload seeds the suspect set…
        let edges: Vec<Record> = (0..400)
            .map(|i| Record::new(vec![Value::Int(i % 7), Value::Int(i)]))
            .collect();
        cbft.load_input("edges", edges).unwrap();
        let outcome = cbft
            .submit_script(
                "a = LOAD 'edges' AS (u, f);
                 g = GROUP a BY u;
                 c = FOREACH g GENERATE group, COUNT(a);
                 STORE c INTO 'counts';",
            )
            .unwrap();
        assert!(outcome.verified());

        // …and probing narrows it to the planted node.
        let report = cbft.probe_suspects(12).unwrap();
        assert!(
            report.isolated.contains(&NodeId(4)) || report.remaining_suspects <= 2,
            "probing should isolate or nearly isolate node 4: {report:?}"
        );
        // The probe campaign must leave exclusions as it found them (the
        // truly isolated node may remain excluded via the analyzer).
        let excluded: Vec<usize> = (0..12)
            .filter(|&i| cbft.cluster().node_excluded(NodeId(i)))
            .collect();
        assert!(
            excluded.iter().all(|&i| i == 4),
            "only the faulty node may stay excluded: {excluded:?}"
        );
    }

    #[test]
    fn probing_with_no_suspects_is_a_noop() {
        let cluster = Cluster::builder().nodes(6).seed(1).build();
        let mut cbft = ClusterBft::new(cluster, JobConfig::default());
        let report = cbft.probe_suspects(5).unwrap();
        assert_eq!(report.probes_run, 0);
        assert!(report.isolated.is_empty());
    }
}
