//! ClusterBFT — assured cloud-based data analysis.
//!
//! A reproduction of *"Assured Cloud-Based Data Analysis with ClusterBFT"*
//! (Stephen & Eugster, Middleware 2013): Byzantine fault tolerant
//! execution of Pig-style data-flow scripts on an untrusted cluster, with
//! practical overheads obtained through
//!
//! * **variable-degree clustering** — whole sub-graphs of the data-flow
//!   DAG are replicated and compared only at a few *verification points*
//!   chosen by a marker function, instead of running BFT consensus at
//!   every stage;
//! * **variable replication** — `f+1`, `2f+1` or `3f+1` replicas trade
//!   resources against the failure classes tolerated;
//! * **approximate, offline comparison** — replicas stream SHA-256 digests
//!   (optionally one per `d` records) to a trusted verifier while
//!   downstream jobs already proceed;
//! * **separation of duty** — a small trusted control tier (this crate)
//!   commands the untrusted Hadoop-style computation tier
//!   ([`cbft_mapreduce`]);
//! * **fault identification and isolation** — overlapping job clusters,
//!   per-node suspicion levels and the Fig. 7 fault analyzer narrow
//!   mismatches down to individual faulty nodes.
//!
//! # Quickstart
//!
//! ```
//! use cbft_dataflow::{Record, Value};
//! use cbft_mapreduce::{Behavior, Cluster};
//! use clusterbft::{ClusterBft, JobConfig, Replication, VpPolicy};
//!
//! // An 8-node untrusted tier with one always-corrupting node.
//! let cluster = Cluster::builder()
//!     .nodes(8)
//!     .slots_per_node(3)
//!     .seed(42)
//!     .node_behavior(3, Behavior::Commission { probability: 1.0 })
//!     .build();
//!
//! let config = JobConfig::builder()
//!     .expected_failures(1)
//!     .replication(Replication::Full)       // 3f + 1 = 4 replicas
//!     .vp_policy(VpPolicy::marked(2))       // 2 verification points + outputs
//!     .build();
//!
//! let mut cbft = ClusterBft::new(cluster, config);
//! let edges: Vec<Record> = (0..500)
//!     .map(|i| Record::new(vec![Value::Int(i % 13), Value::Int(i)]))
//!     .collect();
//! cbft.load_input("edges", edges)?;
//!
//! let outcome = cbft.submit_script(
//!     "raw = LOAD 'edges' AS (user, follower);
//!      grp = GROUP raw BY user;
//!      cnt = FOREACH grp GENERATE group, COUNT(raw) AS n;
//!      STORE cnt INTO 'counts';",
//! )?;
//! assert!(outcome.verified());
//! # Ok::<(), clusterbft::SubmitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod executor;
mod isolation;
mod outcome;
mod pipeline;
mod probe;
mod suspicion;
mod verifier;

pub use config::{JobConfig, JobConfigBuilder, Replication, VpPolicy};
pub use executor::{ExecutorConfig, ParallelExecutor, ParallelOutcome, ReexecSummary, VerifyMode};
pub use isolation::FaultAnalyzer;
pub use outcome::{ScriptOutcome, SubmitError};
pub use pipeline::ClusterBft;
pub use probe::ProbeReport;
pub use suspicion::{SuspicionBand, SuspicionTable};
pub use verifier::{DigestKey, KeyVerdict, StreamedReport, Verifier};

// Re-export the types users need to drive the system without spelling out
// every substrate crate.
pub use cbft_dataflow::analyze::Adversary;
pub use cbft_dataflow::{LogicalPlan, PlanBuilder, Record, Schema, Script, Value, VertexId};
pub use cbft_mapreduce::{Behavior, Cluster, JobMetrics, NodeId};
