//! Parallel replica execution with streaming verification.
//!
//! The sequential [`ClusterBft`](crate::ClusterBft) pipeline interleaves
//! all `r` replicas inside one discrete-event simulation. This module
//! instead gives **each replica its own isolated simulated cluster** and
//! runs the replicas on worker threads, the way a real deployment runs
//! them on disjoint sub-clusters: digest reports stream through a channel
//! into the trusted [`Verifier`] *while sibling replicas are still
//! executing*, so comparison overlaps execution (§3.3's offline
//! verification made literal).
//!
//! # Determinism
//!
//! The verdict is bit-identical no matter how many threads run or how the
//! channel messages interleave:
//!
//! * every replica's entire world derives from
//!   [`SeedSpawner::replica_seed`]`(uid)` — node RNGs, fault draws and
//!   event ordering never depend on sibling replicas or on the thread
//!   that hosts the simulation;
//! * the verifier's table is keyed storage, so ingest order cannot change
//!   any verdict;
//! * the published transcript is sorted by
//!   [`StreamedReport::ordering_key`] — *(verification point, replica,
//!   sequence)* — collapsing every interleaving to one canonical order.
//!
//! # Escalation
//!
//! Rounds follow the paper's §4.1 step 6: start at `f + 1` replicas and,
//! while any final output lacks an `f + 1` digest quorum (a deviant
//! replica caused a mismatch, or an omitted one wedged), add fresh
//! replicas up to `2f + 1` and then `3f + 1`. Digests from earlier rounds
//! keep counting — replica ids are globally unique, so a fresh honest run
//! can complete a quorum started two rounds ago.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cbft_dataflow::analyze::Adversary;
use cbft_dataflow::compile::{compile_plan, DataSource, JobGraph, JobId, JobOutput, Site};
use cbft_dataflow::{LogicalPlan, Record, Script};
use cbft_mapreduce::{
    data_plane, default_compute_threads, Behavior, Cluster, ComputePool, EngineEvent, ExecInput,
    ExecJob, JobOutcome, RunHandle, SamplePlan, SpotCheck, SpotCheckRecord, Storage, Ticket,
    VpSite,
};
use cbft_metrics::{names as metric_names, Domain, Metrics};
use cbft_sim::{CostModel, SeedSpawner};
use cbft_trace::{TraceEvent, Tracer, COORDINATOR_PID};
use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};

use crate::config::VpPolicy;
use crate::outcome::SubmitError;
use crate::pipeline::{choose_points, job_output_sites, vp_sites_by_job};
use crate::suspicion::{SuspicionBand, SuspicionTable};
use crate::verifier::{DigestKey, StreamedReport, Verifier};

/// The executor's verification tier: how much redundant computation buys
/// how much assurance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VerifyMode {
    /// The paper's r-fold replication with `f+1 → 2f+1 → 3f+1`
    /// escalation: every sub-graph runs on multiple replicas and final
    /// outputs need an `f + 1` digest quorum.
    #[default]
    Replicate,
    /// Partial re-execution (Yoon & Liu, arXiv 2002.09560): each
    /// sub-graph runs **once**; a trusted spot-checker deterministically
    /// samples completed tasks by seeded hash and re-executes them
    /// against the recorded output digests. Publication requires every
    /// spot-check to confirm. No replication fallback — a mismatch
    /// leaves the run unverified.
    Sample,
    /// Sample by default, escalate to the full replication ladder on any
    /// spot-check mismatch, wedge, or suspicion-band crossing.
    Hybrid,
}

impl VerifyMode {
    /// Stable lowercase name (CLI flag value / metric rendering).
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Replicate => "replicate",
            VerifyMode::Sample => "sample",
            VerifyMode::Hybrid => "hybrid",
        }
    }

    /// Stable rank for the `cbft_verify_mode` gauge.
    pub fn rank(self) -> u64 {
        match self {
            VerifyMode::Replicate => 0,
            VerifyMode::Sample => 1,
            VerifyMode::Hybrid => 2,
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "replicate" => Some(VerifyMode::Replicate),
            "sample" => Some(VerifyMode::Sample),
            "hybrid" => Some(VerifyMode::Hybrid),
            _ => None,
        }
    }
}

fn default_sample_rate() -> f64 {
    0.1
}

/// Configuration for a [`ParallelExecutor`].
///
/// Serializable so harnesses can persist the exact executor setup next to
/// the results it produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Worker threads executing replica simulations. `1` is the sequential
    /// baseline (same code path, one worker); `0` means one thread per
    /// replica of the current round.
    pub threads: usize,
    /// Compute-pool threads shared by every replica for data-parallel task
    /// payloads (map/reduce UDF evaluation, digesting, shuffle gather).
    /// `1` runs payloads inline; `0` sizes the pool to the host's cores.
    /// Orthogonal to [`ExecutorConfig::threads`]: any value yields
    /// bit-identical verdicts and canonical transcripts.
    pub compute_threads: usize,
    /// Expected number of simultaneously faulty replicas, `f`.
    pub expected_failures: usize,
    /// Cumulative replica-count targets per escalation round. Empty means
    /// the paper's schedule `[f + 1, 2f + 1, 3f + 1]`. Entries are clamped
    /// to at least `f + 1` and must grow to start a new round.
    pub escalation: Vec<usize>,
    /// Verification-point placement (shared with the sequential pipeline,
    /// so both executors instrument identical vertices).
    pub vp_policy: VpPolicy,
    /// Adversary model restricting eligible verification points.
    pub adversary: Adversary,
    /// Records per digest chunk (`d` of §6.4).
    pub digest_granularity: usize,
    /// Reduce tasks per shuffled job (identical across replicas).
    pub reduce_tasks: usize,
    /// Records per map split.
    pub map_split_records: usize,
    /// Rows per columnar batch on the task data plane (`0` = row path).
    /// Host-side only: digests and transcripts are identical either way.
    pub batch_records: usize,
    /// Nodes in each replica's isolated cluster.
    pub nodes: usize,
    /// Task slots per node.
    pub slots_per_node: usize,
    /// Master seed; replica `uid` simulates under
    /// [`SeedSpawner::replica_seed`]`(uid)`.
    pub master_seed: u64,
    /// Cost model for every replica's simulation.
    pub cost: CostModel,
    /// Verification tier: full replication, sampled partial
    /// re-execution, or sampling with replication escalation.
    pub verify_mode: VerifyMode,
    /// Fraction of completed tasks the spot-checker re-executes in
    /// [`VerifyMode::Sample`] / [`VerifyMode::Hybrid`] (clamped to
    /// `[0, 1]`). Sampling decisions are a pure function of
    /// `(master_seed, sub-graph id, task kind, task index)`, so the set
    /// of checked tasks is identical across thread counts.
    pub sample_rate: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            threads: 1,
            compute_threads: default_compute_threads(),
            expected_failures: 1,
            escalation: Vec::new(),
            vp_policy: VpPolicy::Marked(2),
            adversary: Adversary::Strong,
            digest_granularity: usize::MAX,
            reduce_tasks: 4,
            map_split_records: 10_000,
            batch_records: 1024,
            nodes: 16,
            slots_per_node: 3,
            master_seed: 1,
            cost: CostModel::default(),
            verify_mode: VerifyMode::Replicate,
            sample_rate: default_sample_rate(),
        }
    }
}

impl ExecutorConfig {
    /// The sanitized escalation schedule: strictly increasing cumulative
    /// replica targets, each at least `f + 1`.
    pub fn escalation_targets(&self) -> Vec<usize> {
        let f = self.expected_failures;
        let schedule: Vec<usize> = if self.escalation.is_empty() {
            vec![f + 1, 2 * f + 1, 3 * f + 1]
        } else {
            self.escalation.clone()
        };
        let mut targets = Vec::new();
        let mut prev = 0usize;
        for t in schedule {
            let t = t.max(f + 1);
            if t > prev {
                targets.push(t);
                prev = t;
            }
        }
        targets
    }
}

/// What one replica brought home from its isolated simulation.
#[derive(Clone, Debug)]
struct ReplicaRun {
    uid: usize,
    /// Whether every job of the graph completed (wedging on omission or
    /// crash faults leaves this false — the replica simply never reports).
    complete: bool,
    /// Store-name → records for every STORE job the replica completed,
    /// as shared handles into the replica's storage (no copy until one
    /// replica's output is actually published).
    outputs: BTreeMap<String, Arc<[Record]>>,
}

/// Messages a replica worker streams to the coordinator: digest reports
/// for the verifier, and captured spot-check evidence for the trusted
/// re-execution tier.
enum ReplicaMsg {
    Report(StreamedReport),
    Check(Box<SpotCheckRecord>),
}

/// Everything a run derives from the plan before any replica starts:
/// compiled graph, instrumentation sites, and the shared compute pool.
struct Prepared {
    plan: Arc<LogicalPlan>,
    graph: JobGraph,
    vp_map: HashMap<JobId, Vec<VpSite>>,
    store_sites: BTreeMap<JobId, (String, Vec<Site>)>,
    pool: ComputePool,
}

/// Mutable verification state threaded through escalation rounds. The
/// hybrid tier seeds it with the probe replica before entering the
/// ladder, so earlier evidence keeps counting toward quorums.
struct RoundState {
    verifier: Verifier,
    transcript: Vec<StreamedReport>,
    runs: BTreeMap<usize, ReplicaRun>,
    replicas_per_round: Vec<usize>,
    total_uids: usize,
}

/// Spot-check accounting for one run (all zero under
/// [`VerifyMode::Replicate`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReexecSummary {
    /// Tasks the seeded plan selected for checking.
    pub sampled: u64,
    /// Tasks actually re-executed by the trusted checker.
    pub reexecuted: u64,
    /// Re-executions that reproduced the recorded output digest.
    pub confirmed: u64,
    /// Re-executions that contradicted the recorded output digest.
    pub mismatched: u64,
    /// Input records processed by the checker — the spot-check tier's
    /// compute cost, in the same unit as foreground record counts.
    pub records_reexecuted: u64,
    /// Whether a hybrid run escalated to the replication ladder.
    pub escalated: bool,
}

/// The result of one parallel, streamed-verification execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParallelOutcome {
    verified: bool,
    replicas_per_round: Vec<usize>,
    transcript: Vec<StreamedReport>,
    outputs: BTreeMap<String, Vec<Record>>,
    deviant_replicas: BTreeSet<usize>,
    clean_replicas: BTreeSet<usize>,
    omitted_replicas: BTreeSet<usize>,
    conflict_replicas: BTreeSet<usize>,
    verify_mode: VerifyMode,
    reexec: ReexecSummary,
}

impl ParallelOutcome {
    /// Whether every final output reached an `f + 1` digest quorum.
    pub fn verified(&self) -> bool {
        self.verified
    }

    /// Fresh replicas started by each escalation round.
    pub fn replicas_per_round(&self) -> &[usize] {
        &self.replicas_per_round
    }

    /// Total replicas executed across all rounds.
    pub fn total_replicas(&self) -> usize {
        self.replicas_per_round.iter().sum()
    }

    /// The canonical digest transcript, sorted by
    /// [`StreamedReport::ordering_key`]. Identical across thread counts
    /// for the same master seed and fault plan.
    pub fn transcript(&self) -> &[StreamedReport] {
        &self.transcript
    }

    /// Published outputs by store name (empty when unverified).
    pub fn outputs(&self) -> &BTreeMap<String, Vec<Record>> {
        &self.outputs
    }

    /// One published output, if verified.
    pub fn output(&self, name: &str) -> Option<&[Record]> {
        self.outputs.get(name).map(Vec::as_slice)
    }

    /// Replicas whose digests contradicted an established quorum.
    pub fn deviant_replicas(&self) -> &BTreeSet<usize> {
        &self.deviant_replicas
    }

    /// Replicas that reported digests and agreed with the quorum at every
    /// key. Always a subset of the uids that actually ran, and disjoint
    /// from [`ParallelOutcome::deviant_replicas`].
    pub fn clean_replicas(&self) -> &BTreeSet<usize> {
        &self.clean_replicas
    }

    /// Replicas that wedged before completing every job (omission /
    /// crash faults, or an engine-level failure).
    pub fn omitted_replicas(&self) -> &BTreeSet<usize> {
        &self.omitted_replicas
    }

    /// Replicas party to a digest conflict at a key that never reached a
    /// quorum (see [`crate::Verifier::conflict_replicas`]). The conflict
    /// evidence is set-valued: each such key's reporters contain at
    /// least one faulty replica, but no quorum singles it out.
    pub fn conflict_replicas(&self) -> &BTreeSet<usize> {
        &self.conflict_replicas
    }

    /// Every replica the run's forensics implicate: quorum deviants,
    /// wedged replicas and unresolved-conflict parties. The campaign
    /// oracle checks injected faults against this set — any *manifest*
    /// fault (a scheduled replica that corrupted a digested record or
    /// wedged) must appear here.
    pub fn named_replicas(&self) -> BTreeSet<usize> {
        let mut out = self.deviant_replicas.clone();
        out.extend(self.omitted_replicas.iter().copied());
        out.extend(self.conflict_replicas.iter().copied());
        out
    }

    /// The verification tier the run operated under.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify_mode
    }

    /// Spot-check accounting (all zero under [`VerifyMode::Replicate`]).
    pub fn reexec(&self) -> &ReexecSummary {
        &self.reexec
    }
}

/// Runs `r` replicated sub-graph simulations on worker threads, streaming
/// digests into the verifier as they are produced.
///
/// # Examples
///
/// ```
/// use cbft_dataflow::{Record, Value};
/// use clusterbft::{ExecutorConfig, ParallelExecutor};
///
/// let mut exec = ParallelExecutor::new(ExecutorConfig {
///     threads: 2,
///     ..ExecutorConfig::default()
/// });
/// let rows: Vec<Record> = (0..200)
///     .map(|i| Record::new(vec![Value::Int(i % 7), Value::Int(i)]))
///     .collect();
/// exec.load_input("edges", rows)?;
/// let outcome = exec.run_script(
///     "raw = LOAD 'edges' AS (user, follower);
///      grp = GROUP raw BY user;
///      cnt = FOREACH grp GENERATE group, COUNT(raw) AS n;
///      STORE cnt INTO 'counts';",
/// )?;
/// assert!(outcome.verified());
/// assert_eq!(outcome.output("counts").unwrap().len(), 7);
/// # Ok::<(), clusterbft::SubmitError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ParallelExecutor {
    config: ExecutorConfig,
    /// Write-once inputs behind `Arc`s: every replica cluster is seeded
    /// with shared handles to the same record allocations.
    inputs: BTreeMap<String, Arc<[Record]>>,
    faults: BTreeMap<usize, Behavior>,
    tracer: Tracer,
    metrics: Metrics,
    /// An externally owned compute pool (e.g. the job server's, shared
    /// across concurrent jobs). `None` builds a private pool per run
    /// from [`ExecutorConfig::compute_threads`].
    shared_pool: Option<ComputePool>,
}

impl ParallelExecutor {
    /// Creates an executor with the given configuration.
    pub fn new(config: ExecutorConfig) -> Self {
        ParallelExecutor {
            config,
            inputs: BTreeMap::new(),
            faults: BTreeMap::new(),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            shared_pool: None,
        }
    }

    /// Uses an externally owned compute pool for task payloads instead
    /// of building a private one per run. The job server passes its one
    /// shared pool here so `slots` concurrent jobs multiplex over a
    /// fixed set of compute workers rather than spawning `slots` pools
    /// that fight for the same cores. Pool size never changes verdicts,
    /// digests or canonical transcripts (DESIGN.md §5e), so sharing is
    /// invisible to every outcome.
    pub fn set_compute_pool(&mut self, pool: ComputePool) {
        self.shared_pool = Some(pool);
    }

    /// Attaches a trace sink. Each replica's engine events land on a
    /// track labelled by its globally unique uid; coordinator and
    /// verifier events use reserved tracks. Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a metrics hub. Replica engines record task latency,
    /// shuffle bytes and heartbeats labeled by uid; the coordinator
    /// records per-round replica counts and verdicts; the verifier
    /// contributes lag histograms and per-replica forensics. Disabled
    /// by default.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The active configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Loads an input data set, shared read-only by every replica.
    ///
    /// # Errors
    ///
    /// Returns an error when `name` was already loaded (inputs are
    /// write-once, like trusted storage).
    pub fn load_input(&mut self, name: &str, records: Vec<Record>) -> Result<(), SubmitError> {
        if self.inputs.contains_key(name) {
            return Err(SubmitError::Engine(format!(
                "input '{name}' already loaded"
            )));
        }
        self.inputs.insert(name.to_owned(), records.into());
        Ok(())
    }

    /// Injects a fault into replica `uid`'s isolated cluster: every node
    /// of that replica adopts `behavior`. Commission makes the replica a
    /// digest deviant; omission or crash wedges it so its keys stay
    /// pending and escalation kicks in.
    pub fn inject_fault(&mut self, uid: usize, behavior: Behavior) {
        self.faults.insert(uid, behavior);
    }

    /// Parses and executes a script (see [`ParallelExecutor::run_plan`]).
    ///
    /// # Errors
    ///
    /// Parse and plan errors, missing inputs, and worker-thread panics.
    pub fn run_script(&self, source: &str) -> Result<ParallelOutcome, SubmitError> {
        let plan = Script::parse(source)?.into_plan();
        self.run_plan(plan)
    }

    /// Executes a logical plan: each escalation round fans its fresh
    /// replicas out over the worker pool, digests stream into the verifier
    /// live, and the round's verdict decides whether to publish or
    /// escalate.
    ///
    /// # Errors
    ///
    /// Missing inputs and worker-thread panics. Running out of escalation
    /// rounds is *not* an error — the outcome reports `verified() ==
    /// false` with empty outputs.
    pub fn run_plan(&self, plan: LogicalPlan) -> Result<ParallelOutcome, SubmitError> {
        let plan = Arc::new(plan);
        let graph = compile_plan(&plan);
        for job in graph.jobs() {
            for input in &job.inputs {
                if let DataSource::Hdfs(name) = &input.source {
                    if !self.inputs.contains_key(name) {
                        return Err(SubmitError::Engine(format!("missing input '{name}'")));
                    }
                }
            }
        }

        // Identical instrumentation to the sequential pipeline: same
        // marker, same seeds, same sites — digests stay comparable.
        let sizes = {
            let mut sizing = Storage::new();
            for (name, records) in &self.inputs {
                let _ = sizing.write_shared(name, Arc::clone(records));
            }
            sizing.sizes()
        };
        let vps = choose_points(
            &plan,
            &graph,
            &self.config.vp_policy,
            self.config.adversary,
            &sizes,
        );
        let vp_map = vp_sites_by_job(&graph, &vps);
        let store_sites: BTreeMap<JobId, (String, Vec<Site>)> = graph
            .jobs()
            .iter()
            .filter_map(|j| match &j.output {
                JobOutput::Store(name) => Some((j.id(), (name.clone(), job_output_sites(j)))),
                JobOutput::Intermediate => None,
            })
            .collect();

        // One pool for the whole execution: replica worker threads share
        // its compute workers instead of spawning r pools that fight for
        // the same cores. Under a job server the pool is shared wider
        // still — across every concurrently executing job.
        let pool = self.shared_pool.clone().unwrap_or_else(|| {
            ComputePool::with_metrics(self.config.compute_threads, self.metrics.clone())
        });

        let prep = Prepared {
            plan,
            graph,
            vp_map,
            store_sites,
            pool,
        };
        match self.config.verify_mode {
            VerifyMode::Replicate => self.run_replicated(&prep),
            VerifyMode::Sample | VerifyMode::Hybrid => self.run_sampled(&prep),
        }
    }

    /// The classic tier: the full escalation ladder from an empty table.
    fn run_replicated(&self, prep: &Prepared) -> Result<ParallelOutcome, SubmitError> {
        let mut state = RoundState {
            verifier: Verifier::new(self.config.expected_failures, 0),
            transcript: Vec::new(),
            runs: BTreeMap::new(),
            replicas_per_round: Vec::new(),
            total_uids: 0,
        };
        let published = self.run_rounds(prep, &mut state)?;
        Ok(self.finish_outcome(
            state,
            published,
            VerifyMode::Replicate,
            ReexecSummary::default(),
        ))
    }

    /// The sampled tiers: one probe replica plus spot-checks; hybrid
    /// escalates to the replication ladder on any suspicion.
    fn run_sampled(&self, prep: &Prepared) -> Result<ParallelOutcome, SubmitError> {
        let mode = self.config.verify_mode;
        let sample = SamplePlan::from_rate(self.config.master_seed, self.config.sample_rate);
        if self.tracer.enabled() {
            self.tracer.emit(
                TraceEvent::instant("round_start", "executor")
                    .on(COORDINATOR_PID, 0)
                    .seq(0)
                    .arg("target", 1u64)
                    .arg("fresh", 1u64),
            );
        }
        let (run, reports, checks) = self.run_probe_round(prep, sample)?;

        let mut reexec = ReexecSummary {
            sampled: checks.len() as u64,
            reexecuted: checks.len() as u64,
            ..ReexecSummary::default()
        };
        // The spot-check tier maintains the paper's per-node suspicion
        // ledger: every checked task is a job observation on its node,
        // every mismatch a fault. A single mismatch drives its node's
        // level to 1.0 (High), so "any mismatch" and "band crossing"
        // coincide unless the node had prior clean checks.
        let mut suspicion = SuspicionTable::new();
        for check in &checks {
            suspicion.record_jobs_metered([check.node], &self.metrics);
            reexec.records_reexecuted += check.records_reexecuted;
            if check.confirmed {
                reexec.confirmed += 1;
                continue;
            }
            reexec.mismatched += 1;
            suspicion.record_faults_metered([check.node], &self.metrics);
            if self.tracer.enabled() {
                let mut ev = TraceEvent::instant("spot_check_mismatch", "executor")
                    .on(COORDINATOR_PID, 0)
                    .arg("sid", check.sid.clone())
                    .arg("task", check.task_index as u64)
                    .arg("node", check.node.0 as u64);
                if let Some(range) = &check.divergence {
                    ev = ev
                        .arg("first_record", range.first_record)
                        .arg("last_record", range.last_record);
                }
                self.tracer.emit(ev);
            }
            if self.metrics.enabled() {
                if let Some(range) = &check.divergence {
                    // Same localization gauges the quorum verifier uses,
                    // keyed so the health report names the checked task.
                    let kind = match check.kind {
                        cbft_mapreduce::TaskKind::Map => "map",
                        cbft_mapreduce::TaskKind::Reduce => "reduce",
                    };
                    let key = format!("spot/{}/{kind}/{}", check.sid, check.task_index);
                    let label = [("key", cbft_metrics::LabelValue::from(key))];
                    for (name, value) in [
                        (
                            metric_names::DIVERGENCE_FIRST_CHUNK,
                            range.first_chunk as u64,
                        ),
                        (metric_names::DIVERGENCE_LAST_CHUNK, range.last_chunk as u64),
                        (metric_names::DIVERGENCE_FIRST_RECORD, range.first_record),
                        (metric_names::DIVERGENCE_LAST_RECORD, range.last_record),
                    ] {
                        self.metrics.gauge_set(Domain::Sim, name, &label, value);
                    }
                }
            }
        }
        let suspect_band = checks
            .iter()
            .map(|c| suspicion.band(c.node))
            .max_by_key(|b| b.rank())
            .unwrap_or(SuspicionBand::None);
        if suspect_band.rank() >= SuspicionBand::Med.rank() && self.tracer.enabled() {
            self.tracer.emit(
                TraceEvent::instant("suspicion_band_crossed", "executor")
                    .on(COORDINATOR_PID, 0)
                    .seq(1)
                    .arg("band", suspect_band.rank()),
            );
        }

        // A single report per key suffices in the probe round (the
        // spot-checks, not sibling replicas, carry the assurance).
        let mut state = RoundState {
            verifier: Verifier::new(0, 1),
            transcript: reports,
            runs: BTreeMap::from([(0, run)]),
            replicas_per_round: vec![1],
            total_uids: 1,
        };
        for sr in &state.transcript {
            state.verifier.ingest_traced(sr, &self.tracer);
        }
        let probe_clean = reexec.mismatched == 0
            && state.runs[&0].complete
            && suspect_band.rank() < SuspicionBand::Med.rank();
        let published = if probe_clean {
            self.decide(&prep.store_sites, &state.verifier, &state.runs)
        } else {
            None
        };
        self.note_round(&state, published.as_ref());

        let escalate = mode == VerifyMode::Hybrid && published.is_none();
        if self.metrics.enabled() {
            self.metrics
                .gauge_set(Domain::Sim, metric_names::VERIFY_MODE, &[], mode.rank());
            for (name, value) in [
                (metric_names::REEXEC_SAMPLED, reexec.sampled),
                (metric_names::REEXEC_RERUN, reexec.reexecuted),
                (metric_names::REEXEC_CONFIRMED, reexec.confirmed),
                (metric_names::REEXEC_MISMATCHED, reexec.mismatched),
                (metric_names::REEXEC_RECORDS, reexec.records_reexecuted),
                (metric_names::REEXEC_ESCALATIONS, u64::from(escalate)),
            ] {
                if value > 0 {
                    self.metrics.add(Domain::Sim, name, &[], value);
                }
            }
        }

        if !escalate {
            if published.is_none() && self.tracer.enabled() {
                self.tracer.emit(
                    TraceEvent::instant("output_withheld", "executor")
                        .on(COORDINATOR_PID, 0)
                        .seq(2)
                        .arg("mismatched", reexec.mismatched),
                );
            }
            let mut outcome = self.finish_outcome(state, published, mode, reexec);
            if reexec.mismatched > 0 {
                // The probe replica is contradicted by trusted
                // re-execution — name it, the way a quorum would.
                outcome.deviant_replicas.insert(0);
                outcome.clean_replicas.remove(&0);
                outcome.verified = false;
            }
            return Ok(outcome);
        }

        // Hybrid escalation: restart verification under the real `f`
        // with the probe's transcript re-ingested as replica 0, then walk
        // the ordinary ladder. Sampling stays off in replicated rounds —
        // the quorum carries the assurance from here.
        reexec.escalated = true;
        let mut ladder = RoundState {
            verifier: Verifier::new(self.config.expected_failures, 1),
            transcript: state.transcript,
            runs: state.runs,
            replicas_per_round: state.replicas_per_round,
            total_uids: 1,
        };
        for sr in &ladder.transcript {
            ladder.verifier.ingest_traced(sr, &self.tracer);
        }
        let published = self.run_rounds(prep, &mut ladder)?;
        Ok(self.finish_outcome(ladder, published, mode, reexec))
    }

    /// Runs the single sampled probe replica (uid 0), dispatching each
    /// captured spot-check onto the shared compute pool the moment it
    /// arrives, so trusted re-execution overlaps foreground execution.
    fn run_probe_round(
        &self,
        prep: &Prepared,
        sample: SamplePlan,
    ) -> Result<(ReplicaRun, Vec<StreamedReport>, Vec<SpotCheck>), SubmitError> {
        let (tx, rx) = crossbeam::channel::unbounded::<ReplicaMsg>();
        crossbeam::thread::scope(|scope| {
            let handle = {
                let tx = tx.clone();
                let prep = &*prep;
                scope.spawn(move |_| {
                    self.run_replica(
                        0,
                        &prep.plan,
                        &prep.graph,
                        &prep.vp_map,
                        &prep.pool,
                        &tx,
                        Some(sample),
                    )
                })
            };
            drop(tx);
            let mut reports = Vec::new();
            let mut tickets: Vec<Ticket<SpotCheck>> = Vec::new();
            for msg in &rx {
                match msg {
                    ReplicaMsg::Report(sr) => reports.push(sr),
                    ReplicaMsg::Check(rec) => {
                        let task_pool = prep.pool.worker_handle();
                        tickets.push(prep.pool.dispatch(move || rec.check(&task_pool)));
                    }
                }
            }
            let run = match handle.join() {
                Ok(run) => run,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            // Engine emission order is sim-deterministic for the single
            // probe replica, so this check sequence is too.
            let checks = tickets.into_iter().map(Ticket::join).collect();
            (run, reports, checks)
        })
        .map_err(|_| SubmitError::Engine("replica worker thread panicked".to_owned()))
    }

    /// Walks the escalation ladder from wherever `state` stands,
    /// returning the published outputs once a round verifies.
    fn run_rounds(
        &self,
        prep: &Prepared,
        state: &mut RoundState,
    ) -> Result<Option<BTreeMap<String, Vec<Record>>>, SubmitError> {
        let mut published: Option<BTreeMap<String, Vec<Record>>> = None;
        for target in self.config.escalation_targets() {
            if state.total_uids >= target {
                continue; // targets are strictly increasing; defensive
            }
            let fresh = target - state.total_uids;
            let uid_base = state.total_uids;
            state.total_uids = target;
            state.verifier.set_expected(state.total_uids);
            state.replicas_per_round.push(fresh);
            if self.tracer.enabled() {
                self.tracer.emit(
                    TraceEvent::instant("round_start", "executor")
                        .on(COORDINATOR_PID, 0)
                        .seq(state.replicas_per_round.len() as u64 - 1)
                        .arg("target", target)
                        .arg("fresh", fresh),
                );
            }

            let workers = match self.config.threads {
                0 => fresh,
                t => t.min(fresh),
            };
            let next = AtomicUsize::new(0);
            let (tx, rx) = crossbeam::channel::unbounded::<ReplicaMsg>();

            let verifier = &mut state.verifier;
            let round_result = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let prep = &*prep;
                    handles.push(scope.spawn(move |_| {
                        // Work queue: replicas are claimed, not
                        // pre-assigned, so a slow replica never idles the
                        // other workers.
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= fresh {
                                break;
                            }
                            mine.push(self.run_replica(
                                uid_base + i,
                                &prep.plan,
                                &prep.graph,
                                &prep.vp_map,
                                &prep.pool,
                                &tx,
                                None,
                            ));
                        }
                        mine
                    }));
                }
                drop(tx);
                // Streaming ingest: the verifier works while replicas are
                // still executing. The loop ends when the last worker
                // drops its sender.
                let mut received = Vec::new();
                for msg in &rx {
                    match msg {
                        ReplicaMsg::Report(sr) => {
                            verifier.ingest_traced(&sr, &self.tracer);
                            received.push(sr);
                        }
                        // Replicated rounds never carry a sample plan.
                        ReplicaMsg::Check(_) => {}
                    }
                }
                let mut finished = Vec::new();
                for handle in handles {
                    match handle.join() {
                        Ok(mine) => finished.extend(mine),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                (finished, received)
            })
            .map_err(|_| SubmitError::Engine("replica worker thread panicked".to_owned()))?;

            let (finished, received) = round_result;
            state.transcript.extend(received);
            for run in finished {
                state.runs.insert(run.uid, run);
            }

            published = self.decide(&prep.store_sites, &state.verifier, &state.runs);
            self.note_round(state, published.as_ref());
            if published.is_some() {
                break;
            }
        }
        Ok(published)
    }

    /// Emits the round-end trace event and the escalation-cost metrics
    /// for the round that just finished (the last entry of
    /// `state.replicas_per_round`, 1-indexed for the health report).
    fn note_round(&self, state: &RoundState, published: Option<&BTreeMap<String, Vec<Record>>>) {
        let round = state.replicas_per_round.len() as u64;
        let fresh = state.replicas_per_round.last().copied().unwrap_or(0);
        if self.tracer.enabled() {
            self.tracer.emit(
                TraceEvent::instant("round_end", "executor")
                    .on(COORDINATOR_PID, 0)
                    .seq(round - 1)
                    .arg("verified", if published.is_some() { 1u64 } else { 0 }),
            );
        }
        if self.metrics.enabled() {
            // Escalation-cost forensics, recorded on the coordinator
            // in round order (1-indexed for the health report).
            let label = [("round", cbft_metrics::LabelValue::U64(round))];
            self.metrics.gauge_set(
                Domain::Sim,
                metric_names::ROUND_REPLICAS,
                &label,
                fresh as u64,
            );
            self.metrics.gauge_set(
                Domain::Sim,
                metric_names::ROUND_VERIFIED,
                &label,
                u64::from(published.is_some()),
            );
            let records: u64 = published
                .iter()
                .flat_map(|outs| outs.values())
                .map(|recs| recs.len() as u64)
                .sum();
            if records > 0 {
                self.metrics
                    .add(Domain::Sim, metric_names::ROUND_RECORDS, &label, records);
            }
        }
    }

    /// Final forensics and canonical-transcript assembly, shared by every
    /// verification tier.
    fn finish_outcome(
        &self,
        state: RoundState,
        published: Option<BTreeMap<String, Vec<Record>>>,
        verify_mode: VerifyMode,
        reexec: ReexecSummary,
    ) -> ParallelOutcome {
        let RoundState {
            verifier,
            mut transcript,
            runs,
            replicas_per_round,
            ..
        } = state;
        // Deterministic verification-lag timeline, derived from the final
        // table state rather than live channel arrivals.
        verifier.emit_quorum_events(&self.tracer);
        verifier.record_metrics(&self.metrics);
        if self.metrics.enabled() {
            // Fully silent replicas never reach the verifier table, so
            // their omission forensics are charged here: they missed
            // every key their siblings reported.
            let seen = verifier.seen_replicas();
            let keys = verifier.keys_seen() as u64;
            for run in runs.values() {
                if !seen.contains(&run.uid) {
                    let labels = [("replica", cbft_metrics::LabelValue::U64(run.uid as u64))];
                    self.metrics
                        .add(Domain::Sim, metric_names::REPLICA_REPORTS, &labels, 0);
                    self.metrics.add(
                        Domain::Sim,
                        metric_names::REPLICA_OMISSIONS,
                        &labels,
                        keys.max(1),
                    );
                }
            }
        }

        // Canonical order: any thread interleaving sorts to this exact
        // transcript, so downstream consumers (tests, persisted logs)
        // never see scheduling noise.
        transcript.sort_by_key(StreamedReport::ordering_key);

        let omitted = runs
            .values()
            .filter(|r| !r.complete)
            .map(|r| r.uid)
            .collect();
        ParallelOutcome {
            verified: published.is_some(),
            replicas_per_round,
            transcript,
            outputs: published.unwrap_or_default(),
            deviant_replicas: verifier.deviant_replicas(),
            clean_replicas: verifier.clean_replicas(),
            omitted_replicas: omitted,
            conflict_replicas: verifier.conflict_replicas(),
            verify_mode,
            reexec,
        }
    }

    /// Publishes iff every STORE job's output keys are quorum-verified and
    /// a completed replica agrees with the quorum at all of them. Winner
    /// selection scans ascending uid, so the decision is deterministic.
    fn decide(
        &self,
        store_sites: &BTreeMap<JobId, (String, Vec<Site>)>,
        verifier: &Verifier,
        runs: &BTreeMap<usize, ReplicaRun>,
    ) -> Option<BTreeMap<String, Vec<Record>>> {
        let mut out = BTreeMap::new();
        for (name, sites) in store_sites.values() {
            let keys: Vec<DigestKey> = verifier
                .keys()
                .filter(|k| sites.contains(&k.1))
                .copied()
                .collect();
            if keys.is_empty() || !keys.iter().all(|k| verifier.verdict(k).is_verified()) {
                return None;
            }
            let winner = runs.values().find(|run| {
                run.outputs.contains_key(name) && verifier.replica_verified_at(run.uid, keys.iter())
            })?;
            // Publication is the one deep copy on the output path: the
            // winning replica's records leave its private storage.
            let records = &winner.outputs[name];
            data_plane::count_records_cloned(records.len() as u64);
            out.insert(name.clone(), records.to_vec());
        }
        Some(out)
    }

    /// Runs one replica start-to-finish in its own isolated cluster,
    /// streaming every digest (and, when `sample` is set, every captured
    /// spot-check record) through `tx` as the simulation produces them.
    #[allow(clippy::too_many_arguments)]
    fn run_replica(
        &self,
        uid: usize,
        plan: &Arc<LogicalPlan>,
        graph: &JobGraph,
        vp_map: &HashMap<JobId, Vec<VpSite>>,
        pool: &ComputePool,
        tx: &Sender<ReplicaMsg>,
        sample: Option<SamplePlan>,
    ) -> ReplicaRun {
        if self.tracer.enabled() {
            self.tracer.emit(
                TraceEvent::begin("replica", "executor")
                    .on(uid as u32, 0)
                    .seq(uid as u64),
            );
        }
        let spawner = SeedSpawner::new(self.config.master_seed);
        let mut builder = Cluster::builder()
            .nodes(self.config.nodes)
            .slots_per_node(self.config.slots_per_node)
            .cost_model(self.config.cost)
            .seed(spawner.replica_seed(uid))
            .compute_pool(pool.clone())
            .tracer(self.tracer.clone(), uid as u32)
            .metrics(self.metrics.clone());
        if let Some(&behavior) = self.faults.get(&uid) {
            for node in 0..self.config.nodes {
                builder = builder.node_behavior(node, behavior);
            }
        }
        let mut cluster = builder.build();
        for (name, records) in &self.inputs {
            // Every replica's storage holds a handle to the same write-once
            // allocation — r replicas share one copy of each input.
            cluster
                .storage_mut()
                .write_shared(name, Arc::clone(records))
                .expect("fresh replica storage accepts every input once");
        }

        let mut submitted: HashSet<JobId> = HashSet::new();
        let mut completed: HashMap<JobId, String> = HashMap::new();
        let mut handle_jobs: HashMap<RunHandle, JobId> = HashMap::new();
        let mut seq = 0u64;
        let mut wedged = false;

        self.submit_ready(
            &mut cluster,
            uid,
            plan,
            graph,
            vp_map,
            sample,
            &mut submitted,
            &completed,
            &mut handle_jobs,
        );
        loop {
            match cluster.step() {
                Some(EngineEvent::Digest(report)) => {
                    // Coordinator gone means the round was abandoned;
                    // finish quietly.
                    let _ = tx.send(ReplicaMsg::Report(StreamedReport { uid, seq, report }));
                    seq += 1;
                }
                Some(EngineEvent::SpotCheck(rec)) => {
                    // Captured evidence for the trusted checker; the
                    // coordinator schedules the re-run on the pool.
                    let _ = tx.send(ReplicaMsg::Check(rec));
                }
                Some(EngineEvent::JobCompleted { handle, outcome }) => {
                    let Some(job) = handle_jobs.get(&handle).copied() else {
                        continue;
                    };
                    match outcome {
                        JobOutcome::Success { output_file, .. } => {
                            completed.insert(job, output_file);
                            if completed.len() == graph.len() {
                                break;
                            }
                            self.submit_ready(
                                &mut cluster,
                                uid,
                                plan,
                                graph,
                                vp_map,
                                sample,
                                &mut submitted,
                                &completed,
                                &mut handle_jobs,
                            );
                        }
                        JobOutcome::Failed { .. } => {
                            // Per-replica isolation: one replica's engine
                            // failure is an omission from the verifier's
                            // point of view, not a global abort.
                            wedged = true;
                            break;
                        }
                    }
                }
                Some(EngineEvent::Timer(_)) => continue,
                // Wake-driven engine: a drained queue with incomplete jobs
                // is the omission/crash wedge. No timers needed — the
                // coordinator escalates instead of waiting.
                None => break,
            }
        }

        let complete = !wedged && completed.len() == graph.len();
        if self.tracer.enabled() {
            self.tracer.emit(
                TraceEvent::end("replica", "executor")
                    .on(uid as u32, 0)
                    .at_sim(cluster.now().as_micros())
                    .seq(uid as u64)
                    .arg("complete", if complete { 1u64 } else { 0 }),
            );
        }
        let mut outputs = BTreeMap::new();
        for job in graph.jobs() {
            if let JobOutput::Store(name) = &job.output {
                if let Some(file) = completed.get(&job.id()) {
                    if let Some(records) = cluster.storage().share(file) {
                        outputs.insert(name.clone(), records);
                    }
                }
            }
        }
        ReplicaRun {
            uid,
            complete,
            outputs,
        }
    }

    /// Submits every not-yet-submitted job whose dependencies have
    /// materialized in this replica's cluster (wave-by-wave, like the
    /// sequential pipeline but for a single replica).
    #[allow(clippy::too_many_arguments)]
    fn submit_ready(
        &self,
        cluster: &mut Cluster,
        uid: usize,
        plan: &Arc<LogicalPlan>,
        graph: &JobGraph,
        vp_map: &HashMap<JobId, Vec<VpSite>>,
        sample: Option<SamplePlan>,
        submitted: &mut HashSet<JobId>,
        completed: &HashMap<JobId, String>,
        handle_jobs: &mut HashMap<RunHandle, JobId>,
    ) {
        let ns = format!("par/r{uid}");
        for job in graph.jobs() {
            let job_id = job.id();
            if submitted.contains(&job_id) || !job.deps().iter().all(|d| completed.contains_key(d))
            {
                continue;
            }
            let resolve = |src: &DataSource| -> String {
                match src {
                    DataSource::Hdfs(f) => f.clone(),
                    DataSource::Intermediate(j) => completed[j].clone(),
                }
            };
            let spec = ExecJob {
                plan: Arc::clone(plan),
                inputs: job
                    .inputs
                    .iter()
                    .map(|i| ExecInput {
                        file: resolve(&i.source),
                        pipeline: i.pipeline.clone(),
                        tag: i.tag,
                    })
                    .collect(),
                shuffle: job.shuffle,
                reduce: job.reduce.clone(),
                output_file: match &job.output {
                    JobOutput::Store(name) => format!("{ns}/{name}"),
                    JobOutput::Intermediate => format!("{ns}/j{}", job_id.index()),
                },
                reduce_task_count: if job.single_reduce {
                    1
                } else {
                    self.config.reduce_tasks
                },
                map_split_records: self.config.map_split_records,
                verification_points: vp_map.get(&job_id).cloned().unwrap_or_default(),
                digest_granularity: self.config.digest_granularity,
                batch_records: self.config.batch_records,
                sid: format!("j{}", job_id.index()),
                replica: uid,
                // Combiners stay off here so shuffle-site digests are
                // always materialized identically across both executors.
                combiner: None,
                sample,
            };
            let handle = cluster
                .submit(spec)
                .expect("replica-private namespace never collides");
            submitted.insert(job_id);
            handle_jobs.insert(handle, job_id);
        }
    }
}

// The executor's own invariant, checked at compile time: everything a
// worker thread touches crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ParallelExecutor>();
    const fn assert_send<T: Send>() {}
    assert_send::<StreamedReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cbft_dataflow::Value;

    const SCRIPT: &str = "
        a = LOAD 'in' AS (k, v);
        g = GROUP a BY k;
        c = FOREACH g GENERATE group, COUNT(a) AS n, SUM(a.v) AS s;
        o = ORDER c BY n DESC;
        t = LIMIT o 5;
        STORE t INTO 'out';
    ";

    fn rows(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(vec![Value::Int(i % 11), Value::Int(i * 3 % 97)]))
            .collect()
    }

    fn executor(threads: usize, escalation: Vec<usize>) -> ParallelExecutor {
        let mut exec = ParallelExecutor::new(ExecutorConfig {
            threads,
            escalation,
            master_seed: 77,
            ..ExecutorConfig::default()
        });
        exec.load_input("in", rows(300)).unwrap();
        exec
    }

    #[test]
    fn healthy_run_verifies_in_one_round() {
        let outcome = executor(2, vec![2]).run_script(SCRIPT).unwrap();
        assert!(outcome.verified());
        assert_eq!(outcome.replicas_per_round(), &[2]);
        assert!(outcome.deviant_replicas().is_empty());
        assert!(outcome.omitted_replicas().is_empty());
        assert_eq!(outcome.output("out").unwrap().len(), 5);
        assert!(!outcome.transcript().is_empty());
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let baseline = executor(1, vec![2]).run_script(SCRIPT).unwrap();
        for threads in [2, 3, 8] {
            let parallel = executor(threads, vec![2]).run_script(SCRIPT).unwrap();
            assert_eq!(baseline, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn commission_deviant_escalates_and_still_verifies() {
        let mut exec = executor(4, vec![2, 3]);
        exec.inject_fault(0, Behavior::Commission { probability: 1.0 });
        let outcome = exec.run_script(SCRIPT).unwrap();
        assert!(
            outcome.verified(),
            "one honest round-2 replica completes the quorum"
        );
        assert_eq!(outcome.replicas_per_round(), &[2, 1]);
        assert!(outcome.deviant_replicas().contains(&0));

        // The published output matches a fault-free reference run.
        let honest = executor(1, vec![2]).run_script(SCRIPT).unwrap();
        assert_eq!(outcome.outputs(), honest.outputs());
    }

    #[test]
    fn escalation_clean_and_deviant_agree_with_reporting_uids() {
        // Regression for the `clean_replicas` fix: after escalation the
        // live uids are 0, 1 (round one) and 2 (round two) — not
        // 0..expected_replicas — and cleanliness must be claimed only
        // for uids that actually reported digests.
        let mut exec = executor(4, vec![2, 3]);
        exec.inject_fault(0, Behavior::Commission { probability: 1.0 });
        let outcome = exec.run_script(SCRIPT).unwrap();
        assert!(outcome.verified());

        let reported: BTreeSet<usize> = outcome.transcript().iter().map(|sr| sr.uid).collect();
        assert_eq!(reported, BTreeSet::from([0, 1, 2]));
        assert_eq!(outcome.deviant_replicas(), &BTreeSet::from([0]));
        assert_eq!(outcome.clean_replicas(), &BTreeSet::from([1, 2]));
        assert!(outcome
            .clean_replicas()
            .is_disjoint(outcome.deviant_replicas()));
        assert!(
            outcome
                .clean_replicas()
                .iter()
                .all(|u| reported.contains(u)),
            "cleanliness may only be claimed for uids that reported"
        );
    }

    #[test]
    fn crashed_replica_wedges_and_escalation_recovers() {
        let mut exec = executor(4, vec![2, 3]);
        exec.inject_fault(1, Behavior::Crashed);
        let outcome = exec.run_script(SCRIPT).unwrap();
        assert!(outcome.verified());
        assert_eq!(outcome.replicas_per_round(), &[2, 1]);
        assert!(outcome.omitted_replicas().contains(&1));
    }

    #[test]
    fn exhausted_escalation_reports_unverified() {
        let mut exec = executor(2, vec![2]);
        exec.inject_fault(0, Behavior::Commission { probability: 1.0 });
        let outcome = exec.run_script(SCRIPT).unwrap();
        assert!(
            !outcome.verified(),
            "1-vs-1 with f = 1 can never reach quorum"
        );
        assert!(outcome.outputs().is_empty(), "unverified publishes nothing");
    }

    fn sampled_executor(mode: VerifyMode, rate: f64) -> ParallelExecutor {
        let mut exec = ParallelExecutor::new(ExecutorConfig {
            threads: 2,
            verify_mode: mode,
            sample_rate: rate,
            master_seed: 77,
            ..ExecutorConfig::default()
        });
        exec.load_input("in", rows(300)).unwrap();
        exec
    }

    #[test]
    fn sample_mode_verifies_with_one_replica() {
        let outcome = sampled_executor(VerifyMode::Sample, 1.0)
            .run_script(SCRIPT)
            .unwrap();
        assert!(outcome.verified());
        assert_eq!(outcome.total_replicas(), 1);
        assert_eq!(outcome.verify_mode(), VerifyMode::Sample);
        let reexec = outcome.reexec();
        assert!(reexec.sampled > 0, "rate 1.0 must check every task");
        assert_eq!(reexec.confirmed, reexec.sampled);
        assert_eq!(reexec.mismatched, 0);
        assert!(!reexec.escalated);
        assert!(reexec.records_reexecuted > 0);

        // Same verdict and identical published bytes as full replication.
        let replicated = executor(2, vec![2]).run_script(SCRIPT).unwrap();
        assert_eq!(outcome.outputs(), replicated.outputs());
        assert_eq!(
            outcome.transcript().len(),
            replicated.transcript().len() / 2
        );
    }

    #[test]
    fn sample_mode_catches_commission_and_withholds_output() {
        let mut exec = sampled_executor(VerifyMode::Sample, 1.0);
        exec.inject_fault(0, Behavior::Commission { probability: 1.0 });
        let outcome = exec.run_script(SCRIPT).unwrap();
        assert!(
            !outcome.verified(),
            "a mismatched spot-check blocks publication"
        );
        assert!(outcome.outputs().is_empty());
        assert!(outcome.reexec().mismatched > 0);
        assert!(outcome.deviant_replicas().contains(&0));
    }

    #[test]
    fn hybrid_escalates_on_mismatch_and_recovers() {
        let mut exec = sampled_executor(VerifyMode::Hybrid, 1.0);
        exec.inject_fault(0, Behavior::Commission { probability: 1.0 });
        let outcome = exec.run_script(SCRIPT).unwrap();
        assert!(outcome.verified(), "replication quorum rescues the run");
        assert!(outcome.reexec().escalated);
        assert!(outcome.reexec().mismatched > 0);
        assert!(outcome.total_replicas() > 1);
        assert!(outcome.deviant_replicas().contains(&0));

        let honest = executor(1, vec![2]).run_script(SCRIPT).unwrap();
        assert_eq!(outcome.outputs(), honest.outputs());
    }

    #[test]
    fn hybrid_fault_free_stays_single_replica() {
        let outcome = sampled_executor(VerifyMode::Hybrid, 0.5)
            .run_script(SCRIPT)
            .unwrap();
        assert!(outcome.verified());
        assert_eq!(outcome.total_replicas(), 1);
        assert!(!outcome.reexec().escalated);
    }

    #[test]
    fn hybrid_escalates_when_probe_wedges() {
        let mut exec = sampled_executor(VerifyMode::Hybrid, 0.5);
        exec.inject_fault(0, Behavior::Crashed);
        let outcome = exec.run_script(SCRIPT).unwrap();
        assert!(outcome.verified(), "ladder replicas complete the quorum");
        assert!(outcome.reexec().escalated);
        assert!(outcome.omitted_replicas().contains(&0));
    }

    #[test]
    fn sample_mode_is_thread_and_pool_invariant() {
        let mut baseline = sampled_executor(VerifyMode::Sample, 0.5);
        baseline.config.compute_threads = 1;
        let baseline = baseline.run_script(SCRIPT).unwrap();
        for compute in [2, 4] {
            let mut exec = sampled_executor(VerifyMode::Sample, 0.5);
            exec.config.compute_threads = compute;
            let outcome = exec.run_script(SCRIPT).unwrap();
            assert_eq!(baseline, outcome, "compute_threads={compute} diverged");
        }
    }

    #[test]
    fn missing_input_is_an_error() {
        let exec = ParallelExecutor::new(ExecutorConfig::default());
        let err = exec.run_script(SCRIPT).unwrap_err();
        assert!(err.to_string().contains("missing input"), "{err}");
    }

    #[test]
    fn escalation_schedule_is_sanitized() {
        let config = ExecutorConfig {
            expected_failures: 1,
            escalation: vec![0, 3, 3, 2, 5],
            ..ExecutorConfig::default()
        };
        assert_eq!(config.escalation_targets(), vec![2, 3, 5]);
        let default = ExecutorConfig::default();
        assert_eq!(default.escalation_targets(), vec![2, 3, 4]);
    }
}
