//! ClusterBFT job configuration.

use cbft_dataflow::analyze::Adversary;
use cbft_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Replication degree policy (§3.3, *variable replication*).
///
/// The guarantees quoted from the paper:
/// * `f + 1` (optimistic): "the execution ensures safety, but may require
///   repeated runs to get correct output."
/// * `2f + 1`: "a correct result can be guaranteed if all replicas always
///   reply (no omission failures)."
/// * `3f + 1`: "a correct result can be guaranteed under combination of any
///   kind of Byzantine failure."
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replication {
    /// `f + 1` replicas.
    Optimistic,
    /// `2f + 1` replicas.
    Quorum,
    /// `3f + 1` replicas.
    #[default]
    Full,
    /// An explicit replica count (must be at least `f + 1`).
    Exact(usize),
}

impl Replication {
    /// The replica count for a given fault bound `f`.
    pub fn replicas(&self, f: usize) -> usize {
        match self {
            Replication::Optimistic => f + 1,
            Replication::Quorum => 2 * f + 1,
            Replication::Full => 3 * f + 1,
            Replication::Exact(r) => (*r).max(f + 1),
        }
    }
}

/// Where verification points are placed.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VpPolicy {
    /// No digests at all — the unreplicated "Pure Pig" baseline.
    None,
    /// Digest the final outputs only — the paper's `P` baseline and the
    /// "Full" configuration of Fig. 14.
    FinalOnly,
    /// `n` marker-chosen points (Fig. 3) plus the final outputs — the
    /// ClusterBFT configuration.
    Marked(u32),
    /// A digest at every eligible vertex — the "Individual" configuration
    /// of Fig. 14.
    Individual,
    /// Digests at an explicit vertex set plus the final outputs — §6.1
    /// places digests at named operators (Join, Project, Filter) by hand.
    Explicit(Vec<cbft_dataflow::VertexId>),
}

impl Default for VpPolicy {
    fn default() -> Self {
        VpPolicy::Marked(2)
    }
}

impl VpPolicy {
    /// Synonym for `Marked(n)` made readable at call sites.
    pub fn marked(n: u32) -> Self {
        VpPolicy::Marked(n)
    }
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig::builder().build()
    }
}

/// Full configuration for a ClusterBFT script submission.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Expected number of simultaneous faulty nodes, `f`.
    pub expected_failures: usize,
    /// Replica-count policy.
    pub replication: Replication,
    /// Verification-point placement.
    pub vp_policy: VpPolicy,
    /// Adversary model, restricting eligible verification points (§4.1).
    pub adversary: Adversary,
    /// Records per digest chunk (`d` of §6.4); `usize::MAX` = one digest
    /// per stream.
    pub digest_granularity: usize,
    /// Reduce tasks per shuffled job (identical across replicas).
    pub reduce_tasks: usize,
    /// Records per map split.
    pub map_split_records: usize,
    /// Compute-pool threads for data-parallel task payloads inside the
    /// engine (map/reduce UDF evaluation, digesting, shuffle gather).
    /// `1` runs payloads inline; `0` sizes the pool to the host's cores.
    /// Verdicts and canonical traces are bit-identical for any value.
    pub compute_threads: usize,
    /// Rows per columnar batch on the task data plane; `0` keeps the
    /// historical row-at-a-time execution. Purely a host-side execution
    /// strategy: digests, partitions, outputs and work counters are
    /// byte-identical either way, so replicas need not agree on it.
    pub batch_records: usize,
    /// Verifier timeout per attempt; doubles on each re-execution
    /// (§6.2 case 2: "scheduled again with higher timeout value").
    pub verifier_timeout: SimDuration,
    /// Maximum execution attempts before giving up unverified.
    pub max_attempts: u32,
    /// Suspicion level above which a node is excluded from scheduling
    /// (§4.2's administrator threshold).
    pub suspicion_threshold: f64,
    /// Minimum jobs a node must have executed before the threshold can
    /// exclude it (evidence guard).
    pub suspicion_min_jobs: u64,
    /// Cancel a replica's outstanding jobs as soon as its digests prove it
    /// deviant (saves resources; off by default to mirror the paper's
    /// accounting).
    pub early_cancel: bool,
    /// Run the logical-plan optimizer (constant folding, filter fusion,
    /// dead-code elimination) before instrumenting verification points.
    /// Replicas of a script always share one plan, so digests stay
    /// comparable either way.
    pub optimize_plans: bool,
    /// Use map-side combiners for algebraic group-aggregations
    /// (COUNT/SUM/MIN/MAX/AVG): shuffle traffic shrinks to one partial
    /// record per (task, key). Automatically skipped for jobs with a
    /// verification point on the shuffle itself. Off by default so the
    /// calibrated benches keep the paper's shuffle volumes.
    pub combiners: bool,
    /// Let digests from earlier attempts count toward quorums, so a retry
    /// only needs to add the missing replicas instead of re-running the
    /// full replica set.
    ///
    /// Sound when `expected_failures == 1`: each retry sidelines the
    /// analyzer's suspect set (which provably contains the single faulty
    /// node), so fresh digests are honest and any match with a prior
    /// digest includes at least one honest run. With `f ≥ 2` an uncaught
    /// second faulty node could collude with a prior corrupt digest, so
    /// reuse should stay off (see DESIGN.md).
    pub reuse_digests: bool,
}

impl JobConfig {
    /// Starts building a configuration.
    pub fn builder() -> JobConfigBuilder {
        JobConfigBuilder {
            config: JobConfig::base(),
        }
    }

    fn base() -> Self {
        JobConfig {
            expected_failures: 1,
            replication: Replication::Full,
            vp_policy: VpPolicy::Marked(2),
            adversary: Adversary::Strong,
            digest_granularity: usize::MAX,
            reduce_tasks: 4,
            map_split_records: 10_000,
            compute_threads: cbft_mapreduce::default_compute_threads(),
            batch_records: 1024,
            verifier_timeout: SimDuration::from_secs(600),
            max_attempts: 5,
            suspicion_threshold: 0.9,
            suspicion_min_jobs: 4,
            early_cancel: false,
            optimize_plans: false,
            combiners: false,
            reuse_digests: false,
        }
    }

    /// The replica count this configuration starts with.
    pub fn initial_replicas(&self) -> usize {
        self.replication.replicas(self.expected_failures)
    }
}

/// Builder for [`JobConfig`].
///
/// # Examples
///
/// ```
/// use clusterbft::{JobConfig, Replication, VpPolicy};
///
/// let config = JobConfig::builder()
///     .expected_failures(1)
///     .replication(Replication::Optimistic)
///     .vp_policy(VpPolicy::marked(2))
///     .digest_granularity(1_000)
///     .build();
/// assert_eq!(config.initial_replicas(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct JobConfigBuilder {
    config: JobConfig,
}

impl JobConfigBuilder {
    /// Sets `f`, the number of simultaneous faults to tolerate.
    pub fn expected_failures(mut self, f: usize) -> Self {
        self.config.expected_failures = f;
        self
    }

    /// Sets the replication policy.
    pub fn replication(mut self, r: Replication) -> Self {
        self.config.replication = r;
        self
    }

    /// Sets the verification-point policy.
    pub fn vp_policy(mut self, p: VpPolicy) -> Self {
        self.config.vp_policy = p;
        self
    }

    /// Sets the adversary model.
    pub fn adversary(mut self, a: Adversary) -> Self {
        self.config.adversary = a;
        self
    }

    /// Sets the digest granularity `d` (records per digest chunk).
    pub fn digest_granularity(mut self, d: usize) -> Self {
        self.config.digest_granularity = d;
        self
    }

    /// Sets the reduce task count for shuffled jobs.
    pub fn reduce_tasks(mut self, n: usize) -> Self {
        self.config.reduce_tasks = n.max(1);
        self
    }

    /// Sets records per map split.
    pub fn map_split_records(mut self, n: usize) -> Self {
        self.config.map_split_records = n.max(1);
        self
    }

    /// Sets the compute-pool thread count (`0` = host cores, `1` = inline).
    pub fn compute_threads(mut self, n: usize) -> Self {
        self.config.compute_threads = n;
        self
    }

    /// Sets rows per columnar batch (`0` = row-at-a-time execution).
    pub fn batch_records(mut self, n: usize) -> Self {
        self.config.batch_records = n;
        self
    }

    /// Sets the verifier timeout for the first attempt.
    pub fn verifier_timeout(mut self, t: SimDuration) -> Self {
        self.config.verifier_timeout = t;
        self
    }

    /// Sets the maximum number of attempts.
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.config.max_attempts = n.max(1);
        self
    }

    /// Sets the suspicion exclusion threshold.
    pub fn suspicion_threshold(mut self, s: f64) -> Self {
        self.config.suspicion_threshold = s;
        self
    }

    /// Sets the minimum job count before threshold exclusion applies.
    pub fn suspicion_min_jobs(mut self, n: u64) -> Self {
        self.config.suspicion_min_jobs = n;
        self
    }

    /// Enables early cancellation of provably deviant replicas.
    pub fn early_cancel(mut self, on: bool) -> Self {
        self.config.early_cancel = on;
        self
    }

    /// Enables cross-attempt digest reuse (see
    /// [`JobConfig::reuse_digests`] for the soundness condition).
    pub fn reuse_digests(mut self, on: bool) -> Self {
        self.config.reuse_digests = on;
        self
    }

    /// Enables map-side combiners for algebraic aggregations.
    pub fn combiners(mut self, on: bool) -> Self {
        self.config.combiners = on;
        self
    }

    /// Enables the logical-plan optimizer.
    pub fn optimize_plans(mut self, on: bool) -> Self {
        self.config.optimize_plans = on;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> JobConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_degrees() {
        assert_eq!(Replication::Optimistic.replicas(1), 2);
        assert_eq!(Replication::Quorum.replicas(1), 3);
        assert_eq!(Replication::Full.replicas(1), 4);
        assert_eq!(Replication::Full.replicas(2), 7);
        assert_eq!(Replication::Exact(5).replicas(1), 5);
        assert_eq!(Replication::Exact(1).replicas(2), 3, "clamped to f+1");
    }

    #[test]
    fn builder_round_trips() {
        let c = JobConfig::builder()
            .expected_failures(2)
            .replication(Replication::Quorum)
            .vp_policy(VpPolicy::Individual)
            .reduce_tasks(0)
            .max_attempts(0)
            .build();
        assert_eq!(c.expected_failures, 2);
        assert_eq!(c.initial_replicas(), 5);
        assert_eq!(c.reduce_tasks, 1, "clamped");
        assert_eq!(c.max_attempts, 1, "clamped");
    }

    #[test]
    fn default_is_full_replication_two_points() {
        let c = JobConfig::default();
        assert_eq!(c.replication, Replication::Full);
        assert_eq!(c.vp_policy, VpPolicy::Marked(2));
    }
}
