//! Script execution outcomes and errors.

use std::error::Error;
use std::fmt;

use cbft_dataflow::{ParseError, PlanError, VertexId};
use cbft_mapreduce::{JobMetrics, StorageError};
use cbft_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The result of running a script through ClusterBFT.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScriptOutcome {
    verified: bool,
    attempts: u32,
    latency: SimDuration,
    total: JobMetrics,
    outputs: Vec<String>,
    verification_points: Vec<VertexId>,
    replicas_per_attempt: Vec<usize>,
    jobs_per_attempt: Vec<usize>,
    deviant_replica_runs: u32,
    omitted_replica_runs: u32,
    digest_reports: u64,
    digest_chunks: u64,
}

impl ScriptOutcome {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        verified: bool,
        attempts: u32,
        latency: SimDuration,
        total: JobMetrics,
        outputs: Vec<String>,
        verification_points: Vec<VertexId>,
        replicas_per_attempt: Vec<usize>,
        jobs_per_attempt: Vec<usize>,
        deviant_replica_runs: u32,
        omitted_replica_runs: u32,
        digest_reports: u64,
        digest_chunks: u64,
    ) -> Self {
        ScriptOutcome {
            verified,
            attempts,
            latency,
            total,
            outputs,
            verification_points,
            replicas_per_attempt,
            jobs_per_attempt,
            deviant_replica_runs,
            omitted_replica_runs,
            digest_reports,
            digest_chunks,
        }
    }

    /// Whether every final output reached an `f + 1` digest quorum.
    ///
    /// Unreplicated baseline configurations
    /// ([`VpPolicy::None`](crate::VpPolicy::None)) report `false`: nothing
    /// was verified, by construction.
    pub fn verified(&self) -> bool {
        self.verified
    }

    /// Number of execution attempts (1 = no re-execution was needed).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Wall-clock (virtual) time from submission to the verdict.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Total resources consumed across all replicas and attempts.
    pub fn metrics(&self) -> &JobMetrics {
        &self.total
    }

    /// Published output names (empty when unverified).
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// The verification points that were instrumented (marker output plus
    /// the implicit final-output points).
    pub fn verification_points(&self) -> &[VertexId] {
        &self.verification_points
    }

    /// Replica count used by each attempt.
    pub fn replicas_per_attempt(&self) -> &[usize] {
        &self.replicas_per_attempt
    }

    /// Number of jobs each attempt actually ran — shrinks as the verified
    /// frontier grows (the paper's partial re-execution in action).
    pub fn jobs_per_attempt(&self) -> &[usize] {
        &self.jobs_per_attempt
    }

    /// Replica runs whose digests contradicted an established quorum
    /// (commission faults observed).
    pub fn deviant_replica_runs(&self) -> u32 {
        self.deviant_replica_runs
    }

    /// Replica runs that failed to complete before the verifier timeout
    /// (omission faults observed).
    pub fn omitted_replica_runs(&self) -> u32 {
        self.omitted_replica_runs
    }

    /// Total digest reports the verifier received — the comparison traffic
    /// ClusterBFT pays instead of per-stage consensus.
    pub fn digest_reports(&self) -> u64 {
        self.digest_reports
    }

    /// Total digest *chunks* across all reports — grows as the granularity
    /// `d` shrinks (§6.4's approximation-accuracy knob).
    pub fn digest_chunks(&self) -> u64 {
        self.digest_chunks
    }
}

impl fmt::Display for ScriptOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt(s), latency {}, {} output(s), {}",
            if self.verified {
                "VERIFIED"
            } else {
                "UNVERIFIED"
            },
            self.attempts,
            self.latency,
            self.outputs.len(),
            self.total
        )
    }
}

/// Errors from [`ClusterBft`](crate::ClusterBft) submissions.
#[derive(Debug)]
pub enum SubmitError {
    /// The script failed to parse.
    Parse(ParseError),
    /// The plan was structurally invalid.
    Plan(PlanError),
    /// A storage operation failed (missing input, output collision).
    Storage(StorageError),
    /// The execution engine reported an internal failure.
    Engine(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Parse(e) => write!(f, "{e}"),
            SubmitError::Plan(e) => write!(f, "{e}"),
            SubmitError::Storage(e) => write!(f, "{e}"),
            SubmitError::Engine(msg) => write!(f, "engine failure: {msg}"),
        }
    }
}

impl Error for SubmitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SubmitError::Parse(e) => Some(e),
            SubmitError::Plan(e) => Some(e),
            SubmitError::Storage(e) => Some(e),
            SubmitError::Engine(_) => None,
        }
    }
}

impl From<ParseError> for SubmitError {
    fn from(e: ParseError) -> Self {
        SubmitError::Parse(e)
    }
}

impl From<PlanError> for SubmitError {
    fn from(e: PlanError) -> Self {
        SubmitError::Plan(e)
    }
}

impl From<StorageError> for SubmitError {
    fn from(e: StorageError) -> Self {
        SubmitError::Storage(e)
    }
}
