//! The ClusterBFT orchestrator: request handler, execution handler and
//! verifier wired together (Fig. 2 of the paper).
//!
//! A script submission flows through:
//! 1. **Client handler** — parse the script, build the logical plan.
//! 2. **Graph analyzer** — compute input ratios, run the marker function,
//!    instrument verification points (restricted to job boundaries under
//!    the strong adversary).
//! 3. **Job initiator** — compile to a MapReduce job DAG, namespace every
//!    replica's files, and submit `r` replicas of each job to the
//!    execution handler (the simulated Hadoop cluster), wave by wave as
//!    dependencies materialize.
//! 4. **Verifier** — collect streamed digests, require `f + 1` agreement
//!    per correspondence key; on mismatch or timeout, mark suspicion,
//!    feed faulty clusters to the fault analyzer, *trust* every job whose
//!    output reached quorum, and re-execute only the rest with a higher
//!    replica count and a doubled timeout.
//!
//! The two Table-3 configurations fall out directly: ClusterBFT (`C`)
//! places intermediate verification points so re-execution restarts from
//! the last verified job boundary, while the final-output-only baseline
//! (`P`) can never trust intermediates and re-runs the whole script.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use cbft_dataflow::analyze::{analyze_plan, mark_seeded, Adversary};
use cbft_dataflow::compile::{compile_plan, DataSource, JobGraph, JobId, JobOutput, MrJob, Site};
use cbft_dataflow::{LogicalPlan, Script, VertexId};
use cbft_mapreduce::{
    Cluster, ComputePool, EngineEvent, ExecInput, ExecJob, JobOutcome, NodeId, RunHandle,
    TimerToken, VpSite,
};
use cbft_metrics::{names as metric_names, Domain, Metrics};
use cbft_sim::SimDuration;
use cbft_trace::{TraceEvent, Tracer, COORDINATOR_PID};

use crate::config::{JobConfig, VpPolicy};
use crate::isolation::FaultAnalyzer;
use crate::outcome::{ScriptOutcome, SubmitError};
use crate::suspicion::SuspicionTable;
use crate::verifier::{DigestKey, Verifier};

/// The ClusterBFT system: owns the untrusted-tier cluster and the trusted
/// control-tier state (verifier, suspicion table, fault analyzer).
///
/// # Examples
///
/// ```
/// use cbft_dataflow::{Record, Value};
/// use cbft_mapreduce::Cluster;
/// use clusterbft::{ClusterBft, JobConfig};
///
/// let cluster = Cluster::builder().nodes(8).seed(1).build();
/// let mut cbft = ClusterBft::new(cluster, JobConfig::default());
/// let edges: Vec<Record> = (0..100)
///     .map(|i| Record::new(vec![Value::Int(i % 7), Value::Int(i)]))
///     .collect();
/// cbft.load_input("edges", edges)?;
/// let outcome = cbft.submit_script(
///     "raw = LOAD 'edges' AS (user, follower);
///      grp = GROUP raw BY user;
///      cnt = FOREACH grp GENERATE group, COUNT(raw) AS n;
///      STORE cnt INTO 'counts';",
/// )?;
/// assert!(outcome.verified());
/// # Ok::<(), clusterbft::SubmitError>(())
/// ```
pub struct ClusterBft {
    cluster: Cluster,
    config: JobConfig,
    suspicion: SuspicionTable,
    analyzer: Option<FaultAnalyzer>,
    script_counter: u64,
    timer_counter: u64,
    tracer: Tracer,
    metrics: Metrics,
}

/// Per-replica bookkeeping of one completed job.
#[derive(Clone, Debug)]
struct CompletedJob {
    file: String,
    nodes: BTreeSet<NodeId>,
}

impl ClusterBft {
    /// Creates a ClusterBFT deployment over `cluster`.
    ///
    /// When [`JobConfig::compute_threads`] disagrees with the pool the
    /// cluster was built with, a fresh pool of the configured size is
    /// installed; a cluster whose pool already matches (including one
    /// deliberately shared with other engines) is left untouched.
    pub fn new(mut cluster: Cluster, config: JobConfig) -> Self {
        if cluster.compute_pool().threads() != config.compute_threads {
            cluster.set_compute_pool(ComputePool::new(config.compute_threads));
        }
        let analyzer = if config.expected_failures > 0 {
            Some(FaultAnalyzer::new(config.expected_failures))
        } else {
            None
        };
        ClusterBft {
            cluster,
            config,
            suspicion: SuspicionTable::new(),
            analyzer,
            script_counter: 0,
            timer_counter: 0,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a trace sink: the control loop records attempt spans,
    /// verification timeouts and per-key quorum events, and the inner
    /// engine records task/heartbeat/shuffle events on node tracks.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.cluster.set_tracer(tracer.clone(), 0);
        self.tracer = tracer;
    }

    /// Attaches a metrics hub: the control loop records per-attempt
    /// replica counts, suspicion band transitions and fault forensics,
    /// and the inner engine records task latency, shuffle volume and
    /// heartbeat counters.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.cluster.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster (fault injection, storage).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The active configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Replaces the configuration for subsequent submissions. The
    /// persistent trusted-tier state (suspicion table, fault analyzer)
    /// carries over; the fault bound of the analyzer stays as created.
    pub fn set_config(&mut self, config: JobConfig) {
        self.config = config;
    }

    /// A counter unique per submission, for namespacing generated inputs.
    pub(crate) fn probe_counter(&self) -> u64 {
        self.script_counter
    }

    /// The persistent suspicion table.
    pub fn suspicion(&self) -> &SuspicionTable {
        &self.suspicion
    }

    /// The persistent fault analyzer (absent when `f == 0`).
    pub fn fault_analyzer(&self) -> Option<&FaultAnalyzer> {
        self.analyzer.as_ref()
    }

    /// Re-admits a node after administrator re-initialization (§4.2: "take
    /// the node off the grid, apply securing patches and reinsert"): its
    /// suspicion history and analyzer evidence are cleared, its slots
    /// restored, and scheduling resumes. The *simulated* fault behaviour is
    /// untouched — whether the patch actually worked is the caller's
    /// choice via [`Cluster::set_node_behavior`].
    pub fn readmit_node(&mut self, node: NodeId) {
        self.suspicion.reset_node(node);
        if let Some(analyzer) = &mut self.analyzer {
            analyzer.clear_node(node);
        }
        self.cluster
            .reset_node(node, self.cluster.node_behavior(node));
    }

    /// Loads an input data set into trusted storage.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` already exists (storage is write-once).
    pub fn load_input(
        &mut self,
        name: &str,
        records: Vec<cbft_dataflow::Record>,
    ) -> Result<(), SubmitError> {
        self.cluster.storage_mut().write(name, records)?;
        Ok(())
    }

    /// Parses and executes a script (see [`ClusterBft::submit_plan`]).
    ///
    /// # Errors
    ///
    /// Parse errors, plan errors, storage errors (missing inputs, output
    /// collisions) and engine failures.
    pub fn submit_script(&mut self, source: &str) -> Result<ScriptOutcome, SubmitError> {
        let plan = Script::parse(source)?.into_plan();
        self.submit_plan(plan)
    }

    /// Executes a logical plan with BFT-replicated sub-graphs, verifying
    /// digests at the configured verification points and re-executing
    /// unverified suffixes until every final output reaches an `f + 1`
    /// quorum (or attempts are exhausted).
    ///
    /// # Errors
    ///
    /// Storage errors (missing inputs, output collisions) and engine
    /// failures. Running out of attempts is *not* an error: the returned
    /// outcome reports `verified() == false`.
    pub fn submit_plan(&mut self, plan: LogicalPlan) -> Result<ScriptOutcome, SubmitError> {
        let script_id = self.script_counter;
        self.script_counter += 1;
        let plan = if self.config.optimize_plans {
            cbft_dataflow::optimize::optimize(&plan)
        } else {
            plan
        };
        let plan = Arc::new(plan);
        let start = self.cluster.now();
        let graph = compile_plan(&plan);

        let vps = self.choose_verification_points(&plan, &graph);
        let vp_map = vp_sites_by_job(&graph, &vps);
        let output_sites: BTreeMap<JobId, Vec<Site>> = graph
            .jobs()
            .iter()
            .map(|j| (j.id(), job_output_sites(j)))
            .collect();
        let store_jobs: Vec<JobId> = graph
            .jobs()
            .iter()
            .filter(|j| matches!(j.output, JobOutput::Store(_)))
            .map(|j| j.id())
            .collect();

        let f = self.config.expected_failures;
        let base_r = self.config.initial_replicas();
        let max_r = base_r.max(3 * f + 1);
        let unverified_baseline = matches!(self.config.vp_policy, VpPolicy::None);
        let max_attempts = if unverified_baseline {
            1
        } else {
            self.config.max_attempts
        };

        let mut trusted: HashMap<JobId, String> = HashMap::new();
        let mut total = cbft_mapreduce::JobMetrics::new();
        let mut replicas_per_attempt = Vec::new();
        let mut jobs_per_attempt = Vec::new();
        let mut deviant_runs = 0u32;
        let mut omitted_runs = 0u32;
        let mut digest_reports = 0u64;
        let mut digest_chunks = 0u64;
        // Replica count and timeout escalate only on omission timeouts
        // (§4.1 step 6); pure digest mismatches instead exclude the
        // analyzer's suspect set and retry, because the mismatch already
        // told us *where* the fault hides.
        let mut r = base_r;
        let mut timeout_scale = 0u32;
        // Nodes excluded for the remainder of this script on suspicion of
        // having caused a mismatch; restored at the end unless isolated.
        let mut temp_excluded: BTreeSet<NodeId> = BTreeSet::new();
        // Digest reuse across attempts (sound for f = 1 because every
        // attempt's suspects are sidelined before the retry; see DESIGN.md):
        // replicas get globally unique ids so a fresh run's digests can
        // complete a quorum together with prior clean runs.
        let reuse = self.config.reuse_digests;
        let mut verifier = Verifier::new(f, 0);
        let mut completed_by_uid: HashMap<(usize, JobId), CompletedJob> = HashMap::new();
        let mut total_uids = 0usize;
        let mut deviant_uids_seen: BTreeSet<(u32, usize)> = BTreeSet::new();

        for attempt in 0..max_attempts {
            replicas_per_attempt.push(r);
            let run_jobs: Vec<JobId> = graph
                .jobs()
                .iter()
                .map(MrJob::id)
                .filter(|j| !trusted.contains_key(j))
                .collect();
            if run_jobs.is_empty() {
                replicas_per_attempt.pop();
                break; // everything verified in earlier attempts
            }
            jobs_per_attempt.push(run_jobs.len());
            if self.metrics.enabled() {
                self.metrics.gauge_set(
                    Domain::Sim,
                    metric_names::ROUND_REPLICAS,
                    &[("round", (attempt as u64 + 1).into())],
                    r as u64,
                );
            }
            if self.tracer.enabled() {
                self.tracer.emit(
                    TraceEvent::begin("attempt", "control")
                        .on(COORDINATOR_PID, 0)
                        .at_sim(self.cluster.now().as_micros())
                        .seq(attempt as u64)
                        .arg("script", script_id)
                        .arg("replicas", r as u64)
                        .arg("jobs", run_jobs.len()),
                );
            }

            // Each MR job gets its own sub-graph id (`sub.graph.id`, §5.3):
            // replica disjointness is enforced per job, so different jobs'
            // clusters may overlap — which is exactly what powers fault
            // isolation (§4.2).
            let sid_prefix = format!("s{script_id}a{attempt}j");
            if !reuse {
                verifier = Verifier::new(f, 0);
                completed_by_uid.clear();
                total_uids = 0;
            }
            let uid_base = total_uids;
            total_uids += r;
            verifier.set_expected(total_uids);
            let attempt_key = if reuse { 0 } else { attempt };
            let mut submitted: Vec<HashSet<JobId>> = vec![HashSet::new(); r];
            let mut completed: Vec<HashMap<JobId, CompletedJob>> = vec![HashMap::new(); r];
            let mut handles: HashMap<RunHandle, (usize, JobId)> = HashMap::new();
            // Per-replica jobs abandoned by early cancellation: once a
            // replica's copy of a job is provably corrupt, everything
            // downstream of it in that replica's lineage is doomed anyway.
            let mut blocked: Vec<HashSet<JobId>> = vec![HashSet::new(); r];
            let descendants = job_descendants(&graph);

            for rep in 0..r {
                self.submit_ready(
                    &plan,
                    &graph,
                    &run_jobs,
                    &trusted,
                    &vp_map,
                    &sid_prefix,
                    script_id,
                    attempt,
                    rep,
                    uid_base,
                    &mut submitted[rep],
                    &completed[rep],
                    &blocked[rep],
                    &mut handles,
                )?;
            }

            let token = TimerToken(self.timer_counter);
            self.timer_counter += 1;
            let timeout = scale_timeout(self.config.verifier_timeout, timeout_scale);
            self.cluster.set_timer(self.cluster.now() + timeout, token);

            let mut timed_out = false;
            loop {
                match self.cluster.step() {
                    Some(EngineEvent::Digest(d)) => {
                        if !d.sid.starts_with(&sid_prefix) {
                            continue;
                        }
                        digest_reports += 1;
                        digest_chunks += d.summary.chunks().len() as u64;
                        verifier.record(&d);
                        if self.config.early_cancel {
                            self.early_cancel_deviants(
                                &verifier,
                                &descendants,
                                uid_base,
                                &mut blocked,
                                &handles,
                                &completed,
                            );
                        }
                    }
                    Some(EngineEvent::JobCompleted { handle, outcome }) => {
                        let Some((rep, job)) = handles.get(&handle).copied() else {
                            continue;
                        };
                        match outcome {
                            JobOutcome::Success {
                                metrics,
                                nodes,
                                output_file,
                            } => {
                                total += metrics;
                                self.suspicion
                                    .record_jobs_metered(nodes.iter().copied(), &self.metrics);
                                let done = CompletedJob {
                                    file: output_file,
                                    nodes,
                                };
                                completed_by_uid.insert((uid_base + rep, job), done.clone());
                                completed[rep].insert(job, done);
                                self.submit_ready(
                                    &plan,
                                    &graph,
                                    &run_jobs,
                                    &trusted,
                                    &vp_map,
                                    &sid_prefix,
                                    script_id,
                                    attempt,
                                    rep,
                                    uid_base,
                                    &mut submitted[rep],
                                    &completed[rep],
                                    &blocked[rep],
                                    &mut handles,
                                )?;
                                let all_done = (0..r).all(|i| {
                                    run_jobs.iter().all(|j| {
                                        completed[i].contains_key(j) || blocked[i].contains(j)
                                    })
                                });
                                if all_done {
                                    break;
                                }
                            }
                            JobOutcome::Failed { reason } => {
                                self.cancel_all(&handles, &completed);
                                return Err(SubmitError::Engine(reason));
                            }
                        }
                    }
                    Some(EngineEvent::Timer(t)) if t == token => {
                        timed_out = true;
                        break;
                    }
                    Some(EngineEvent::Timer(_)) => continue,
                    // The sequential pipeline never attaches a sample
                    // plan; spot-checking lives in the parallel executor.
                    Some(EngineEvent::SpotCheck(_)) => continue,
                    None => break,
                }
            }

            // Account omissions: replicas that did not finish in time.
            for rep in 0..r {
                let finished = run_jobs
                    .iter()
                    .all(|j| completed[rep].contains_key(j) || blocked[rep].contains(j));
                if finished {
                    continue;
                }
                omitted_runs += 1;
                let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
                for (handle, (hrep, _)) in &handles {
                    if *hrep == rep {
                        if let Some(used) = self.cluster.running_nodes(*handle) {
                            nodes.extend(used);
                        }
                    }
                }
                // "does not receive a digest from nodes executing the
                // data-flow → the suspicion level of all involved nodes is
                // updated" (§4.3).
                if timed_out {
                    self.suspicion
                        .record_faults_metered(nodes.iter().copied(), &self.metrics);
                }
            }
            self.cancel_all(&handles, &completed);
            if timed_out && self.tracer.enabled() {
                self.tracer.emit(
                    TraceEvent::instant("verify_timeout", "control")
                        .on(COORDINATOR_PID, 0)
                        .at_sim(self.cluster.now().as_micros())
                        .seq(attempt as u64)
                        .arg("timeout_us", timeout.as_micros()),
                );
            }

            // Account commission deviants and feed the fault analyzer with
            // the per-job clusters that produced wrong digests.
            for uid in verifier.deviant_replicas() {
                if !deviant_uids_seen.insert((attempt_key, uid)) {
                    continue; // already processed in an earlier evaluation
                }
                deviant_runs += 1;
                let mut faulty_jobs: BTreeSet<JobId> = BTreeSet::new();
                for key in verifier.keys() {
                    if let crate::verifier::KeyVerdict::Verified { deviant, .. } =
                        verifier.verdict(key)
                    {
                        if deviant.contains(&uid) {
                            faulty_jobs.insert(key.1.job());
                        }
                    }
                }
                // Attribute only at the deviance *frontier*: a job whose
                // dependency already deviated merely inherited corrupt
                // input — its own cluster is innocent.
                for &job in &faulty_jobs {
                    if graph
                        .job(job)
                        .deps()
                        .iter()
                        .any(|d| faulty_jobs.contains(d))
                    {
                        continue;
                    }
                    if let Some(c) = completed_by_uid.get(&(uid, job)) {
                        self.suspicion
                            .record_faults_metered(c.nodes.iter().copied(), &self.metrics);
                        if let Some(analyzer) = &mut self.analyzer {
                            analyzer.observe_faulty_cluster(c.nodes.clone());
                        }
                    }
                }
            }

            // Quorum-less mismatches (e.g. 1-vs-1 at r = f + 1): the fault
            // cannot be attributed to a replica, but the union of the
            // disagreeing clusters is known to contain it.
            let mismatched_jobs: BTreeSet<JobId> = verifier
                .mismatched_keys()
                .iter()
                .map(|k| k.1.job())
                .collect();
            let mismatch_frontier: Vec<JobId> = mismatched_jobs
                .iter()
                .copied()
                .filter(|j| {
                    !graph
                        .job(*j)
                        .deps()
                        .iter()
                        .any(|d| mismatched_jobs.contains(d))
                })
                .collect();
            for job in mismatch_frontier {
                let mut union: BTreeSet<NodeId> = BTreeSet::new();
                for uid in 0..total_uids {
                    if let Some(c) = completed_by_uid.get(&(uid, job)) {
                        if uid >= uid_base {
                            self.suspicion
                                .record_faults_metered(c.nodes.iter().copied(), &self.metrics);
                        }
                        union.extend(c.nodes.iter().copied());
                    }
                }
                if let Some(analyzer) = &mut self.analyzer {
                    analyzer.observe_faulty_cluster(union);
                }
            }

            // Trust every job whose output stream reached quorum, taking a
            // quorum member's file (§3.3 variable granularity: the verified
            // frontier is where re-execution restarts).
            for &job in &run_jobs {
                if trusted.contains_key(&job) {
                    continue;
                }
                let sites = &output_sites[&job];
                let keys: Vec<DigestKey> = verifier
                    .keys()
                    .filter(|k| sites.contains(&k.1))
                    .copied()
                    .collect();
                if std::env::var_os("CBFT_DEBUG").is_some() {
                    let verdicts: Vec<String> = keys
                        .iter()
                        .map(|k| format!("{:?}", verifier.verdict(k)))
                        .collect();
                    eprintln!(
                        "[cbft] attempt {attempt} job {job} output sites {sites:?} keys {} verdicts {:?}",
                        keys.len(),
                        verdicts
                    );
                }
                if keys.is_empty() || !keys.iter().all(|k| verifier.verdict(k).is_verified()) {
                    continue;
                }
                let winner = (0..total_uids).find(|&uid| {
                    completed_by_uid.contains_key(&(uid, job))
                        && verifier.replica_verified_at(uid, keys.iter())
                });
                if let Some(w) = winner {
                    trusted.insert(job, completed_by_uid[&(w, job)].file.clone());
                }
            }

            // Threshold exclusion (§4.2) plus precise exclusion of nodes
            // the fault analyzer has isolated down to a singleton set.
            for node in self.suspicion.over_threshold(
                self.config.suspicion_threshold,
                self.config.suspicion_min_jobs,
            ) {
                self.cluster.set_node_excluded(node, true);
            }
            if let Some(analyzer) = &self.analyzer {
                for node in analyzer.isolated_faulty_nodes() {
                    self.cluster.set_node_excluded(node, true);
                }
            }

            if self.tracer.enabled() {
                let verified = store_jobs.iter().all(|j| trusted.contains_key(j));
                self.tracer.emit(
                    TraceEvent::end("attempt", "control")
                        .on(COORDINATOR_PID, 0)
                        .at_sim(self.cluster.now().as_micros())
                        .seq(attempt as u64)
                        .arg("verified", u64::from(verified))
                        .arg("timed_out", u64::from(timed_out)),
                );
            }

            // Unverified baseline: publish replica 0's outputs as-is.
            if unverified_baseline {
                let rep0_done = completed[0].len() == run_jobs.len();
                let outputs = if rep0_done {
                    self.publish_from(&graph, &store_jobs, |job| {
                        completed[0].get(&job).map(|c| c.file.clone())
                    })?
                } else {
                    Vec::new()
                };
                verifier.emit_quorum_events(&self.tracer);
                verifier.record_metrics(&self.metrics);
                return Ok(ScriptOutcome::new(
                    false,
                    attempt + 1,
                    self.cluster.now().since(start),
                    total,
                    outputs,
                    vps.iter().copied().collect(),
                    replicas_per_attempt,
                    jobs_per_attempt.clone(),
                    deviant_runs,
                    omitted_runs,
                    digest_reports,
                    digest_chunks,
                ));
            }

            if store_jobs.iter().all(|j| trusted.contains_key(j)) {
                let outputs =
                    self.publish_from(&graph, &store_jobs, |job| trusted.get(&job).cloned())?;
                self.restore_exclusions(&temp_excluded);
                verifier.emit_quorum_events(&self.tracer);
                verifier.record_metrics(&self.metrics);
                return Ok(ScriptOutcome::new(
                    true,
                    attempt + 1,
                    self.cluster.now().since(start),
                    total,
                    outputs,
                    vps.iter().copied().collect(),
                    replicas_per_attempt,
                    jobs_per_attempt.clone(),
                    deviant_runs,
                    omitted_runs,
                    digest_reports,
                    digest_chunks,
                ));
            }

            // Prepare the next attempt. Timeouts escalate the replica count
            // and the timeout (§4.1 step 6); mismatches instead sideline
            // the analyzer's suspect set so the retry lands on clean nodes
            // — capped so at least half the cluster keeps working.
            if timed_out {
                if f > 0 {
                    r = (r + 1).min(max_r);
                }
                timeout_scale += 1;
            } else if reuse && f > 0 {
                // Every job retains at least one clean prior run whose
                // digests count toward the quorum, so one fresh replica
                // per job completes it once suspects are sidelined.
                r = 1;
            }
            if let Some(analyzer) = &self.analyzer {
                let cap = self.cluster.node_count() / 2;
                for node in analyzer.suspected_nodes() {
                    if temp_excluded.len() >= cap {
                        break;
                    }
                    if !self.cluster.node_excluded(node) {
                        temp_excluded.insert(node);
                        self.cluster.set_node_excluded(node, true);
                    }
                }
            }
        }

        // Attempts exhausted (or everything was already trusted on entry).
        let all_trusted = store_jobs.iter().all(|j| trusted.contains_key(j));
        let outputs = if all_trusted {
            self.publish_from(&graph, &store_jobs, |job| trusted.get(&job).cloned())?
        } else {
            Vec::new()
        };
        self.restore_exclusions(&temp_excluded);
        verifier.emit_quorum_events(&self.tracer);
        verifier.record_metrics(&self.metrics);
        Ok(ScriptOutcome::new(
            all_trusted,
            replicas_per_attempt.len() as u32,
            self.cluster.now().since(start),
            total,
            outputs,
            vps.iter().copied().collect(),
            replicas_per_attempt,
            jobs_per_attempt,
            deviant_runs,
            omitted_runs,
            digest_reports,
            digest_chunks,
        ))
    }

    // --- helpers ------------------------------------------------------------

    /// Chooses the instrumented vertices: the policy's points plus the
    /// final outputs (a result can only be *assured* if the output itself
    /// is compared).
    fn choose_verification_points(
        &self,
        plan: &LogicalPlan,
        graph: &JobGraph,
    ) -> BTreeSet<VertexId> {
        choose_points(
            plan,
            graph,
            &self.config.vp_policy,
            self.config.adversary,
            &self.cluster.storage().sizes(),
        )
    }

    /// Submits every not-yet-submitted job of `rep` whose inputs exist.
    #[allow(clippy::too_many_arguments)]
    fn submit_ready(
        &mut self,
        plan: &Arc<LogicalPlan>,
        graph: &JobGraph,
        run_jobs: &[JobId],
        trusted: &HashMap<JobId, String>,
        vp_map: &HashMap<JobId, Vec<VpSite>>,
        sid_prefix: &str,
        script_id: u64,
        attempt: u32,
        rep: usize,
        uid_base: usize,
        submitted: &mut HashSet<JobId>,
        completed: &HashMap<JobId, CompletedJob>,
        blocked: &HashSet<JobId>,
        handles: &mut HashMap<RunHandle, (usize, JobId)>,
    ) -> Result<(), SubmitError> {
        let ns = format!("cbft-{script_id}/a{attempt}/r{rep}");
        for &job_id in run_jobs {
            if submitted.contains(&job_id) || blocked.contains(&job_id) {
                continue;
            }
            let job = graph.job(job_id);
            let ready = job
                .deps()
                .iter()
                .all(|d| trusted.contains_key(d) || completed.contains_key(d));
            if !ready {
                continue;
            }
            let resolve = |src: &DataSource| -> String {
                match src {
                    DataSource::Hdfs(f) => f.clone(),
                    DataSource::Intermediate(j) => trusted
                        .get(j)
                        .cloned()
                        .unwrap_or_else(|| completed[j].file.clone()),
                }
            };
            let vps = vp_map.get(&job_id).cloned().unwrap_or_default();
            // Combine only when no verification point needs the shuffle's
            // materialized bags.
            let combiner = if self.config.combiners
                && !vps.iter().any(|vp| matches!(vp.site, Site::Shuffle { .. }))
            {
                match (job.shuffle, job.reduce.first()) {
                    (Some(sh), Some(&first)) => cbft_dataflow::combiner::Combiner::for_job(
                        plan.vertex(sh).op(),
                        plan.vertex(first).op(),
                    ),
                    _ => None,
                }
            } else {
                None
            };
            let spec = ExecJob {
                plan: Arc::clone(plan),
                inputs: job
                    .inputs
                    .iter()
                    .map(|i| ExecInput {
                        file: resolve(&i.source),
                        pipeline: i.pipeline.clone(),
                        tag: i.tag,
                    })
                    .collect(),
                shuffle: job.shuffle,
                reduce: job.reduce.clone(),
                output_file: match &job.output {
                    JobOutput::Store(name) => format!("{ns}/{name}"),
                    JobOutput::Intermediate => format!("{ns}/j{}", job_id.index()),
                },
                reduce_task_count: if job.single_reduce {
                    1
                } else {
                    self.config.reduce_tasks
                },
                map_split_records: self.config.map_split_records,
                verification_points: vps,
                digest_granularity: self.config.digest_granularity,
                batch_records: self.config.batch_records,
                sid: format!("{sid_prefix}{}", job_id.index()),
                replica: uid_base + rep,
                combiner,
                sample: None,
            };
            let handle = self.cluster.submit(spec)?;
            submitted.insert(job_id);
            handles.insert(handle, (rep, job_id));
        }
        Ok(())
    }

    /// Blocks the dependency closure of every (replica, job) whose digests
    /// contradict an established quorum: the corrupt output would feed the
    /// descendants, so running them is wasted work.
    fn early_cancel_deviants(
        &mut self,
        verifier: &Verifier,
        descendants: &[BTreeSet<JobId>],
        uid_base: usize,
        blocked: &mut [HashSet<JobId>],
        handles: &HashMap<RunHandle, (usize, JobId)>,
        completed: &[HashMap<JobId, CompletedJob>],
    ) {
        let mut newly_blocked: Vec<(usize, JobId)> = Vec::new();
        for key in verifier.keys() {
            if let crate::verifier::KeyVerdict::Verified { deviant, .. } = verifier.verdict(key) {
                let job = key.1.job();
                for uid in deviant {
                    // Only the current attempt has cancellable work.
                    let Some(rep) = uid.checked_sub(uid_base) else {
                        continue;
                    };
                    if rep >= blocked.len() {
                        continue;
                    }
                    for &down in &descendants[job.index()] {
                        if blocked[rep].insert(down) {
                            newly_blocked.push((rep, down));
                        }
                    }
                }
            }
        }
        for (rep, job) in newly_blocked {
            if completed[rep].contains_key(&job) {
                continue; // already ran to completion; nothing to cancel
            }
            let doomed: Vec<RunHandle> = handles
                .iter()
                .filter(|(_, (r, j))| *r == rep && *j == job)
                .map(|(h, _)| *h)
                .collect();
            for h in doomed {
                self.cluster.cancel(h);
            }
        }
    }

    fn cancel_all(
        &mut self,
        handles: &HashMap<RunHandle, (usize, JobId)>,
        completed: &[HashMap<JobId, CompletedJob>],
    ) {
        for (handle, (rep, job)) in handles {
            if !completed[*rep].contains_key(job) {
                self.cluster.cancel(*handle);
            }
        }
    }

    /// Re-admits nodes that were sidelined on suspicion during this script,
    /// unless the fault analyzer has isolated them or their suspicion level
    /// now exceeds the operator threshold.
    fn restore_exclusions(&mut self, temp_excluded: &BTreeSet<NodeId>) {
        let mut keep: BTreeSet<NodeId> = self
            .suspicion
            .over_threshold(
                self.config.suspicion_threshold,
                self.config.suspicion_min_jobs,
            )
            .into_iter()
            .collect();
        if let Some(analyzer) = &self.analyzer {
            keep.extend(analyzer.isolated_faulty_nodes());
        }
        for &node in temp_excluded {
            if !keep.contains(&node) {
                self.cluster.set_node_excluded(node, false);
            }
        }
    }

    fn publish_from(
        &mut self,
        graph: &JobGraph,
        store_jobs: &[JobId],
        file_of: impl Fn(JobId) -> Option<String>,
    ) -> Result<Vec<String>, SubmitError> {
        let mut outputs = Vec::new();
        for &job_id in store_jobs {
            let JobOutput::Store(name) = &graph.job(job_id).output else {
                continue;
            };
            let Some(file) = file_of(job_id) else {
                continue;
            };
            // Publication republishes the verified replica file under its
            // STORE name by sharing the write-once payload — no records
            // are copied.
            let records =
                self.cluster.storage().share(&file).ok_or_else(|| {
                    SubmitError::Engine(format!("verified file '{file}' vanished"))
                })?;
            self.cluster.storage_mut().write_shared(name, records)?;
            outputs.push(name.clone());
        }
        Ok(outputs)
    }
}

impl std::fmt::Debug for ClusterBft {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBft")
            .field("config", &self.config)
            .field("scripts_run", &self.script_counter)
            .finish()
    }
}

/// Chooses the instrumented vertices for `plan` under `policy`: the
/// policy's points plus the final outputs. A free function (rather than a
/// [`ClusterBft`] method) so the sequential pipeline and the parallel
/// executor place *identical* verification points — digests are only
/// comparable across executors when the instrumented vertex sets match.
pub(crate) fn choose_points(
    plan: &LogicalPlan,
    graph: &JobGraph,
    policy: &VpPolicy,
    adversary: Adversary,
    sizes: &HashMap<String, u64>,
) -> BTreeSet<VertexId> {
    let stores: BTreeSet<VertexId> = plan.stores().into_iter().collect();
    match policy {
        VpPolicy::None => BTreeSet::new(),
        VpPolicy::FinalOnly => stores,
        VpPolicy::Marked(n) => {
            let analysis = analyze_plan(plan, sizes);
            let eligible = eligible_vertices(plan, graph, adversary);
            // The final outputs are implicitly verified; seeding them
            // as marked makes the n requested points land at
            // intermediate job boundaries.
            let seeds: Vec<VertexId> = stores.iter().copied().collect();
            let marked = mark_seeded(
                plan,
                &analysis,
                *n as usize,
                |v| eligible.contains(&v.id()),
                &seeds,
            );
            marked.into_iter().chain(stores).collect()
        }
        VpPolicy::Individual => {
            let mut all = eligible_vertices(plan, graph, adversary);
            all.extend(stores);
            all
        }
        VpPolicy::Explicit(vertices) => vertices.iter().copied().chain(stores).collect(),
    }
}

/// Eligible verification vertices under the adversary model: any vertex
/// for a weak adversary; only *job boundaries* (the vertices whose streams
/// are materialized between jobs) for a strong one (§4.1).
pub(crate) fn eligible_vertices(
    plan: &LogicalPlan,
    graph: &JobGraph,
    adversary: Adversary,
) -> BTreeSet<VertexId> {
    match adversary {
        Adversary::Weak => plan.vertices().iter().map(|v| v.id()).collect(),
        Adversary::Strong => graph.jobs().iter().filter_map(job_output_vertex).collect(),
    }
}

/// The vertex whose stream is this job's output (`None` for an empty job,
/// which compilation never produces).
pub(crate) fn job_output_vertex(job: &MrJob) -> Option<VertexId> {
    if let Some(&v) = job.reduce.last() {
        return Some(v);
    }
    if let Some(v) = job.shuffle {
        return Some(v);
    }
    job.inputs.first().and_then(|i| i.pipeline.last()).copied()
}

/// The digest sites that cover this job's output stream.
pub(crate) fn job_output_sites(job: &MrJob) -> Vec<Site> {
    if !job.reduce.is_empty() {
        return vec![Site::Reduce {
            job: job.id(),
            pos: job.reduce.len() - 1,
        }];
    }
    if job.shuffle.is_some() {
        return vec![Site::Shuffle { job: job.id() }];
    }
    job.inputs
        .iter()
        .enumerate()
        .filter(|(_, i)| !i.pipeline.is_empty())
        .map(|(idx, i)| Site::MapInput {
            job: job.id(),
            input: idx,
            pos: i.pipeline.len() - 1,
        })
        .collect()
}

/// The transitive consumers of each job (by index), from the dependency
/// edges of the compiled graph.
fn job_descendants(graph: &JobGraph) -> Vec<BTreeSet<JobId>> {
    let n = graph.len();
    let mut children: Vec<Vec<JobId>> = vec![Vec::new(); n];
    for job in graph.jobs() {
        for dep in job.deps() {
            children[dep.index()].push(job.id());
        }
    }
    let mut out: Vec<BTreeSet<JobId>> = vec![BTreeSet::new(); n];
    // Jobs are topologically ordered by id; accumulate in reverse.
    for i in (0..n).rev() {
        let mut set = BTreeSet::new();
        for &c in &children[i] {
            set.insert(c);
            set.extend(out[c.index()].iter().copied());
        }
        out[i] = set;
    }
    out
}

/// Groups the chosen vertices' execution sites by job.
pub(crate) fn vp_sites_by_job(
    graph: &JobGraph,
    vps: &BTreeSet<VertexId>,
) -> HashMap<JobId, Vec<VpSite>> {
    let mut map: HashMap<JobId, Vec<VpSite>> = HashMap::new();
    for &v in vps {
        for site in graph.vertex_sites(v) {
            map.entry(site.job())
                .or_default()
                .push(VpSite { vertex: v, site });
        }
    }
    map
}

fn scale_timeout(base: SimDuration, attempt: u32) -> SimDuration {
    base.mul_f64(2f64.powi(attempt.min(16) as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbft_dataflow::PlanBuilder;

    #[test]
    fn output_sites_prefer_reduce_tail() {
        let mut b = PlanBuilder::new();
        let l = b.add_load("f", &["x"]).unwrap();
        let g = b.add_group(l, 0).unwrap();
        let c = b
            .add_project(g, vec![(cbft_dataflow::Expr::Col(0), "k".into())])
            .unwrap();
        b.add_store(c, "o").unwrap();
        let plan = b.build().unwrap();
        let graph = compile_plan(&plan);
        let job = &graph.jobs()[0];
        let sites = job_output_sites(job);
        assert_eq!(
            sites,
            vec![Site::Reduce {
                job: job.id(),
                pos: job.reduce.len() - 1
            }]
        );
        assert_eq!(job_output_vertex(job), job.reduce.last().copied());
    }

    #[test]
    fn map_only_output_sites_cover_every_input() {
        let mut b = PlanBuilder::new();
        let l = b.add_load("f", &["x"]).unwrap();
        let r = b.add_load("g", &["x"]).unwrap();
        let u = b.add_union(l, r).unwrap();
        b.add_store(u, "o").unwrap();
        let plan = b.build().unwrap();
        let graph = compile_plan(&plan);
        let job = &graph.jobs()[0];
        let sites = job_output_sites(job);
        assert_eq!(
            sites.len(),
            2,
            "both union branches digest the store marker"
        );
    }

    #[test]
    fn timeout_scaling_doubles() {
        let base = SimDuration::from_secs(10);
        assert_eq!(scale_timeout(base, 0), base);
        assert_eq!(scale_timeout(base, 1), SimDuration::from_secs(20));
        assert_eq!(scale_timeout(base, 2), SimDuration::from_secs(40));
    }
}
