//! Per-node suspicion levels.
//!
//! §4.1: *"The suspicion level of a node is defined as total number of
//! faults associated with the node divided by the total number of jobs
//! executed on the node."* §6.3 buckets levels into Low (0, 0.33],
//! Med (0.33, 0.66] and High (0.66, 1] for Figs. 12–13.

use std::collections::BTreeMap;

use cbft_mapreduce::NodeId;
use cbft_metrics::{names as metric_names, Domain, Metrics};
use serde::{Deserialize, Serialize};

/// Suspicion bucket used in the paper's Figs. 12–13.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuspicionBand {
    /// `s == 0` (or no data).
    None,
    /// `0 < s ≤ 0.33`.
    Low,
    /// `0.33 < s ≤ 0.66`.
    Med,
    /// `0.66 < s`.
    High,
}

impl SuspicionBand {
    /// Band rank, 0 (`None`) through 3 (`High`).
    pub fn rank(self) -> u64 {
        match self {
            SuspicionBand::None => 0,
            SuspicionBand::Low => 1,
            SuspicionBand::Med => 2,
            SuspicionBand::High => 3,
        }
    }

    /// Stable lowercase band name, matching `cbft_metrics::BAND_NAMES`.
    pub fn name(self) -> &'static str {
        match self {
            SuspicionBand::None => "none",
            SuspicionBand::Low => "low",
            SuspicionBand::Med => "med",
            SuspicionBand::High => "high",
        }
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
struct NodeStats {
    faults: u64,
    jobs: u64,
}

/// Tracks per-node job and fault counts and derives suspicion levels.
///
/// # Examples
///
/// ```
/// use cbft_mapreduce::NodeId;
/// use clusterbft::{SuspicionBand, SuspicionTable};
///
/// let mut table = SuspicionTable::new();
/// table.record_jobs([NodeId(0), NodeId(1)]);
/// table.record_faults([NodeId(1)]);
/// assert_eq!(table.level(NodeId(0)), 0.0);
/// assert_eq!(table.level(NodeId(1)), 1.0);
/// assert_eq!(table.band(NodeId(1)), SuspicionBand::High);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspicionTable {
    stats: BTreeMap<NodeId, NodeStats>,
}

impl SuspicionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a job (cluster) executed on `nodes`.
    pub fn record_jobs(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        for n in nodes {
            self.stats.entry(n).or_default().jobs += 1;
        }
    }

    /// Records that a faulty job cluster involved `nodes`.
    ///
    /// Fault counts are capped at the job count so `s` stays in `[0, 1]`
    /// (a node cannot be more suspicious than "every job it touched was
    /// faulty"). A fault observed on a node with no recorded job implies
    /// the node *did* run something, so the job count is raised to one —
    /// previously such evidence was stored as `faults = 1, jobs = 0`,
    /// which `level()` rendered as `0.0`, hiding the fault until an
    /// unrelated job landed on the node.
    pub fn record_faults(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        for n in nodes {
            let s = self.stats.entry(n).or_default();
            s.jobs = s.jobs.max(1);
            s.faults = (s.faults + 1).min(s.jobs);
        }
    }

    /// [`SuspicionTable::record_jobs`] plus band-transition metrics: a
    /// node whose band changed gets a
    /// `cbft_suspicion_transitions_total{node, from, to}` tick and its
    /// `cbft_suspicion_band{node}` gauge updated. Updates run on the
    /// coordinator in sim order, so both are sim-deterministic.
    pub fn record_jobs_metered(
        &mut self,
        nodes: impl IntoIterator<Item = NodeId>,
        metrics: &Metrics,
    ) {
        for n in nodes {
            let before = self.band(n);
            self.record_jobs([n]);
            self.note_band(n, before, metrics);
        }
    }

    /// [`SuspicionTable::record_faults`] plus band-transition metrics;
    /// see [`SuspicionTable::record_jobs_metered`].
    pub fn record_faults_metered(
        &mut self,
        nodes: impl IntoIterator<Item = NodeId>,
        metrics: &Metrics,
    ) {
        for n in nodes {
            let before = self.band(n);
            self.record_faults([n]);
            self.note_band(n, before, metrics);
        }
    }

    fn note_band(&self, node: NodeId, before: SuspicionBand, metrics: &Metrics) {
        if !metrics.enabled() {
            return;
        }
        let after = self.band(node);
        if after != before {
            metrics.add(
                Domain::Sim,
                metric_names::SUSPICION_TRANSITIONS,
                &[
                    ("node", node.0.into()),
                    ("from", before.name().into()),
                    ("to", after.name().into()),
                ],
                1,
            );
        }
        metrics.gauge_set(
            Domain::Sim,
            metric_names::SUSPICION_BAND,
            &[("node", node.0.into())],
            after.rank(),
        );
    }

    /// The suspicion level `s = faults / jobs` (0 when the node has run
    /// nothing).
    pub fn level(&self, node: NodeId) -> f64 {
        match self.stats.get(&node) {
            Some(s) if s.jobs > 0 => s.faults as f64 / s.jobs as f64,
            _ => 0.0,
        }
    }

    /// The node's suspicion band.
    pub fn band(&self, node: NodeId) -> SuspicionBand {
        let s = self.level(node);
        if s <= 0.0 {
            SuspicionBand::None
        } else if s <= 1.0 / 3.0 {
            SuspicionBand::Low
        } else if s <= 2.0 / 3.0 {
            SuspicionBand::Med
        } else {
            SuspicionBand::High
        }
    }

    /// Nodes whose suspicion level strictly exceeds `threshold` — the
    /// resource manager removes these from its inclusion list (§4.2).
    ///
    /// `min_jobs` guards against evidence-free exclusion: a node whose
    /// single job happened to sit in a mismatched cluster would otherwise
    /// jump straight to `s = 1`.
    pub fn over_threshold(&self, threshold: f64, min_jobs: u64) -> Vec<NodeId> {
        self.stats
            .iter()
            .filter(|(_, s)| s.jobs >= min_jobs)
            .map(|(&n, _)| n)
            .filter(|&n| self.level(n) > threshold)
            .collect()
    }

    /// Counts of nodes per band, for Figs. 12–13.
    pub fn band_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::from([("none", 0), ("low", 0), ("med", 0), ("high", 0)]);
        for &n in self.stats.keys() {
            let key = match self.band(n) {
                SuspicionBand::None => "none",
                SuspicionBand::Low => "low",
                SuspicionBand::Med => "med",
                SuspicionBand::High => "high",
            };
            *out.get_mut(key).expect("preseeded") += 1;
        }
        out
    }

    /// All nodes with any recorded activity.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.stats.keys().copied()
    }

    /// Forgets a node's history — used when the administrator
    /// re-initializes it (§4.2).
    pub fn reset_node(&mut self, node: NodeId) {
        self.stats.remove(&node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_fault_ratio() {
        let mut t = SuspicionTable::new();
        for _ in 0..4 {
            t.record_jobs([NodeId(7)]);
        }
        t.record_faults([NodeId(7)]);
        assert!((t.level(NodeId(7)) - 0.25).abs() < 1e-9);
        assert_eq!(t.band(NodeId(7)), SuspicionBand::Low);
    }

    #[test]
    fn bands_partition_the_range() {
        let mut t = SuspicionTable::new();
        // node 0: 0/3, node 1: 1/3, node 2: 2/3, node 3: 3/3
        for n in 0..4u64 {
            for _ in 0..3 {
                t.record_jobs([NodeId(n as usize)]);
            }
            for _ in 0..n {
                t.record_faults([NodeId(n as usize)]);
            }
        }
        assert_eq!(t.band(NodeId(0)), SuspicionBand::None);
        assert_eq!(t.band(NodeId(1)), SuspicionBand::Low);
        assert_eq!(t.band(NodeId(2)), SuspicionBand::Med);
        assert_eq!(t.band(NodeId(3)), SuspicionBand::High);
        let counts = t.band_counts();
        assert_eq!(counts["none"], 1);
        assert_eq!(counts["low"], 1);
        assert_eq!(counts["med"], 1);
        assert_eq!(counts["high"], 1);
    }

    #[test]
    fn faults_never_exceed_jobs() {
        let mut t = SuspicionTable::new();
        t.record_jobs([NodeId(0)]);
        t.record_faults([NodeId(0)]);
        t.record_faults([NodeId(0)]);
        assert!(t.level(NodeId(0)) <= 1.0);
    }

    #[test]
    fn threshold_exclusion() {
        let mut t = SuspicionTable::new();
        t.record_jobs([NodeId(0), NodeId(1)]);
        t.record_faults([NodeId(1)]);
        assert_eq!(t.over_threshold(0.9, 1), vec![NodeId(1)]);
        assert!(t.over_threshold(1.0, 1).is_empty());
        assert!(
            t.over_threshold(0.9, 2).is_empty(),
            "one observation is not enough evidence"
        );
    }

    #[test]
    fn unknown_node_is_unsuspicious() {
        let t = SuspicionTable::new();
        assert_eq!(t.level(NodeId(99)), 0.0);
        assert_eq!(t.band(NodeId(99)), SuspicionBand::None);
    }

    #[test]
    fn fault_without_prior_job_is_visible() {
        // Regression: a timeout can charge nodes before any job was
        // recorded for them; the evidence used to be stored as
        // faults=1/jobs=0, which level() showed as 0.0.
        let mut t = SuspicionTable::new();
        t.record_faults([NodeId(5)]);
        assert_eq!(t.level(NodeId(5)), 1.0);
        assert_eq!(t.band(NodeId(5)), SuspicionBand::High);
        // The implied job participates in later ratios: one more clean
        // job halves the level rather than resetting history.
        t.record_jobs([NodeId(5)]);
        assert!((t.level(NodeId(5)) - 0.5).abs() < 1e-9);
    }
}

#[cfg(test)]
mod reset_tests {
    use super::*;

    #[test]
    fn reset_forgets_history() {
        let mut t = SuspicionTable::new();
        t.record_jobs([NodeId(3)]);
        t.record_faults([NodeId(3)]);
        assert_eq!(t.level(NodeId(3)), 1.0);
        t.reset_node(NodeId(3));
        assert_eq!(t.level(NodeId(3)), 0.0);
        assert_eq!(t.nodes().count(), 0);
    }
}
