//! Crate-level tests for orchestrator paths not covered by the happy-path
//! suites: explicit verification points, digest reuse, weak adversary,
//! publish collisions and exhausted attempts.

use cbft_dataflow::{Record, Script, Value};
use cbft_mapreduce::{Behavior, Cluster};
use cbft_sim::SimDuration;
use clusterbft::{Adversary, ClusterBft, JobConfig, Replication, VpPolicy};

const SCRIPT: &str = "raw = LOAD 'edges' AS (user, follower);
     good = FILTER raw BY follower IS NOT NULL;
     grp = GROUP good BY user;
     cnt = FOREACH grp GENERATE group, COUNT(good) AS n;
     STORE cnt INTO 'counts';";

fn edges(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new(vec![Value::Int(i % 9), Value::Int(i)]))
        .collect()
}

fn deployment(seed: u64, faulty: &[(usize, Behavior)], config: JobConfig) -> ClusterBft {
    let mut builder = Cluster::builder().nodes(10).slots_per_node(3).seed(seed);
    for &(n, b) in faulty {
        builder = builder.node_behavior(n, b);
    }
    let mut cbft = ClusterBft::new(builder.build(), config);
    cbft.load_input("edges", edges(500)).unwrap();
    cbft
}

#[test]
fn explicit_verification_points_are_instrumented() {
    let plan = Script::parse(SCRIPT).unwrap().into_plan();
    let filter = plan
        .vertices()
        .iter()
        .find(|v| v.op().name() == "Filter")
        .unwrap()
        .id();
    let mut cbft = deployment(
        1,
        &[],
        JobConfig::builder()
            .expected_failures(1)
            .replication(Replication::Full)
            .vp_policy(VpPolicy::Explicit(vec![filter]))
            .map_split_records(100)
            .build(),
    );
    let outcome = cbft.submit_script(SCRIPT).unwrap();
    assert!(outcome.verified());
    assert!(
        outcome.verification_points().contains(&filter),
        "{:?}",
        outcome.verification_points()
    );
    assert!(outcome.digest_reports() > 0);
}

#[test]
fn weak_adversary_allows_more_points_than_strong() {
    let run = |adversary| {
        let mut cbft = deployment(
            2,
            &[],
            JobConfig::builder()
                .expected_failures(1)
                .replication(Replication::Full)
                .vp_policy(VpPolicy::Individual)
                .adversary(adversary)
                .map_split_records(100)
                .build(),
        );
        let outcome = cbft.submit_script(SCRIPT).unwrap();
        assert!(outcome.verified());
        outcome.verification_points().len()
    };
    let strong = run(Adversary::Strong);
    let weak = run(Adversary::Weak);
    assert!(
        weak > strong,
        "weak adversary admits mid-job points: weak={weak} strong={strong}"
    );
}

#[test]
fn digest_reuse_retries_with_a_single_fresh_replica() {
    let mut cbft = deployment(
        3,
        &[(0, Behavior::Commission { probability: 1.0 })],
        JobConfig::builder()
            .expected_failures(1)
            .replication(Replication::Optimistic) // r = 2: retry guaranteed
            .vp_policy(VpPolicy::marked(1))
            .map_split_records(100)
            .reuse_digests(true)
            .verifier_timeout(SimDuration::from_secs(60))
            .build(),
    );
    let outcome = cbft.submit_script(SCRIPT).unwrap();
    assert!(outcome.verified(), "{outcome}");
    assert!(outcome.attempts() >= 2);
    assert_eq!(
        outcome.replicas_per_attempt().last(),
        Some(&1),
        "mismatch retry adds one replica under reuse: {:?}",
        outcome.replicas_per_attempt()
    );
}

#[test]
fn jobs_per_attempt_shrinks_with_the_trusted_frontier() {
    // A three-branch script (independent group/store pipelines off one
    // input): when the faulty node corrupts only some branches, the clean
    // branches' jobs are trusted and the retry runs strictly fewer jobs.
    let branches = "a = LOAD 'edges' AS (u, f);
         g1 = GROUP a BY u;
         c1 = FOREACH g1 GENERATE group, COUNT(a) AS n;
         STORE c1 INTO 'by_user';
         g2 = GROUP a BY f;
         c2 = FOREACH g2 GENERATE group, COUNT(a) AS n;
         STORE c2 INTO 'by_follower';
         p = FOREACH a GENERATE f AS x;
         g3 = GROUP p BY x;
         c3 = FOREACH g3 GENERATE group, COUNT(p) AS n;
         STORE c3 INTO 'by_projection';";
    let mut shrunk = false;
    for seed in 0..30u64 {
        let mut cbft = deployment(
            100 + seed,
            &[(0, Behavior::Commission { probability: 0.3 })],
            JobConfig::builder()
                .expected_failures(1)
                .replication(Replication::Optimistic)
                .vp_policy(VpPolicy::marked(2))
                .map_split_records(100)
                .verifier_timeout(SimDuration::from_secs(120))
                .build(),
        );
        let outcome = cbft.submit_script(branches).unwrap();
        let jobs = outcome.jobs_per_attempt();
        if jobs.len() >= 2 && jobs[1] < jobs[0] {
            shrunk = true;
            break;
        }
    }
    assert!(shrunk, "some seed must show partial re-execution");
}

#[test]
fn publish_collision_is_reported_as_storage_error() {
    let mut cbft = deployment(
        4,
        &[],
        JobConfig::builder()
            .expected_failures(0)
            .replication(Replication::Exact(1))
            .vp_policy(VpPolicy::FinalOnly)
            .map_split_records(100)
            .build(),
    );
    // Occupy the output name before the run publishes.
    cbft.cluster_mut()
        .storage_mut()
        .write("counts", vec![])
        .unwrap();
    let err = cbft.submit_script(SCRIPT).unwrap_err();
    assert!(matches!(err, clusterbft::SubmitError::Storage(_)), "{err}");
}

#[test]
fn exhausted_attempts_return_unverified_without_publishing() {
    // Every node is crashed: nothing ever completes, every attempt times
    // out, and the script ends unverified. (All-commission nodes would
    // *not* work here: deterministic corruption is identical across
    // replicas, and with more than f faults BFT legitimately cannot tell
    // unanimous corruption from a correct result.)
    let faults: Vec<(usize, Behavior)> = (0..10).map(|i| (i, Behavior::Crashed)).collect();
    let mut cbft = deployment(
        5,
        &faults,
        JobConfig::builder()
            .expected_failures(1)
            .replication(Replication::Optimistic)
            .vp_policy(VpPolicy::marked(1))
            .map_split_records(100)
            .max_attempts(2)
            .verifier_timeout(SimDuration::from_secs(30))
            .build(),
    );
    let outcome = cbft.submit_script(SCRIPT).unwrap();
    assert!(!outcome.verified());
    assert!(
        outcome.outputs().is_empty(),
        "unverified output must not publish"
    );
    assert!(!cbft.cluster().storage().exists("counts"));
    assert_eq!(outcome.attempts(), 2);
}

#[test]
fn missing_input_fails_before_any_execution() {
    let cluster = Cluster::builder().nodes(4).seed(6).build();
    let mut cbft = ClusterBft::new(cluster, JobConfig::default());
    let err = cbft.submit_script(SCRIPT).unwrap_err();
    assert!(matches!(err, clusterbft::SubmitError::Storage(_)), "{err}");
}

#[test]
fn parse_errors_surface_with_line_numbers() {
    let cluster = Cluster::builder().nodes(4).seed(7).build();
    let mut cbft = ClusterBft::new(cluster, JobConfig::default());
    let err = cbft
        .submit_script("a = LOAD 'x' AS (y);\nb = WAT a;")
        .unwrap_err();
    assert!(matches!(err, clusterbft::SubmitError::Parse(_)), "{err}");
}

#[test]
fn combiners_preserve_outputs_and_verification() {
    use cbft_dataflow::interp::interpret;
    use std::collections::HashMap;

    let run = |combiners: bool| {
        let mut cbft = deployment(
            8,
            &[],
            JobConfig::builder()
                .expected_failures(1)
                .replication(Replication::Full)
                .vp_policy(VpPolicy::marked(2))
                .map_split_records(100)
                .combiners(combiners)
                .build(),
        );
        let outcome = cbft.submit_script(SCRIPT).unwrap();
        assert!(outcome.verified(), "combiners={combiners}: {outcome}");
        let out = cbft.cluster().storage().peek("counts").unwrap().to_vec();
        (outcome.metrics().local_write_bytes, out)
    };
    let (bytes_without, out_without) = run(false);
    let (bytes_with, out_with) = run(true);

    let mut a = out_without;
    let mut b = out_with;
    a.sort();
    b.sort();
    assert_eq!(a, b, "combining must not change results");
    assert!(
        bytes_with * 2 < bytes_without,
        "combining should cut shuffle spill substantially: {bytes_with} vs {bytes_without}"
    );

    // And the verified output still equals the reference interpreter.
    let plan = Script::parse(SCRIPT).unwrap().into_plan();
    let inputs = HashMap::from([("edges".to_owned(), edges(500))]);
    let mut reference = interpret(&plan, &inputs)
        .unwrap()
        .output("counts")
        .unwrap()
        .to_vec();
    reference.sort();
    assert_eq!(a, reference);
}

#[test]
fn combiners_disabled_when_shuffle_hosts_a_verification_point() {
    // Weak adversary + Individual puts a point on the GROUP itself; the
    // run must still verify (the engine falls back to full bags).
    let mut cbft = deployment(
        9,
        &[(0, Behavior::Commission { probability: 1.0 })],
        JobConfig::builder()
            .expected_failures(1)
            .replication(Replication::Full)
            .vp_policy(VpPolicy::Individual)
            .adversary(Adversary::Weak)
            .map_split_records(100)
            .combiners(true)
            .build(),
    );
    let outcome = cbft.submit_script(SCRIPT).unwrap();
    assert!(outcome.verified(), "{outcome}");
}

#[test]
fn administrator_cycle_patches_and_readmits_a_node() {
    use clusterbft::NodeId;

    let mut cbft = deployment(
        6,
        &[(2, Behavior::Commission { probability: 1.0 })],
        JobConfig::builder()
            .expected_failures(1)
            .replication(Replication::Full)
            .vp_policy(VpPolicy::marked(1))
            .map_split_records(100)
            .build(),
    );
    // Several rounds isolate and exclude the faulty node.
    for i in 0..4 {
        let script = SCRIPT.replace("counts", &format!("counts{i}"));
        assert!(cbft.submit_script(&script).unwrap().verified());
    }
    assert!(
        cbft.cluster().node_excluded(NodeId(2)),
        "isolated node must be excluded: {:?}",
        cbft.fault_analyzer()
            .map(clusterbft::FaultAnalyzer::suspects)
    );

    // The administrator patches the node and reinserts it.
    cbft.cluster_mut()
        .set_node_behavior(NodeId(2), Behavior::Honest);
    cbft.readmit_node(NodeId(2));
    assert!(!cbft.cluster().node_excluded(NodeId(2)));
    assert_eq!(cbft.suspicion().level(NodeId(2)), 0.0);

    // Post-patch scripts verify and the node serves again without
    // re-accumulating suspicion.
    for i in 4..8 {
        let script = SCRIPT.replace("counts", &format!("counts{i}"));
        assert!(cbft.submit_script(&script).unwrap().verified());
    }
    assert!(
        cbft.suspicion().level(NodeId(2)) < 0.2,
        "patched node stays clean: {}",
        cbft.suspicion().level(NodeId(2))
    );
}

#[test]
fn plan_optimizer_preserves_verified_results() {
    let wasteful = "a = LOAD 'edges' AS (u, f);
         b = FILTER a BY 1 == 1;
         c = FILTER b BY u >= 0;
         d = FILTER c BY f IS NOT NULL;
         dead = GROUP a BY f;
         g = GROUP d BY u;
         cnt = FOREACH g GENERATE group, COUNT(d) AS n;
         STORE cnt INTO 'counts';";
    let run = |optimize: bool| {
        let mut cbft = deployment(
            12,
            &[(1, Behavior::Commission { probability: 1.0 })],
            JobConfig::builder()
                .expected_failures(1)
                .replication(Replication::Full)
                .vp_policy(VpPolicy::marked(2))
                .map_split_records(100)
                .optimize_plans(optimize)
                .build(),
        );
        let outcome = cbft.submit_script(wasteful).unwrap();
        assert!(outcome.verified(), "optimize={optimize}: {outcome}");
        let mut out = cbft.cluster().storage().peek("counts").unwrap().to_vec();
        out.sort();
        (out, *outcome.metrics())
    };
    let (plain, m_plain) = run(false);
    let (optimized, m_opt) = run(true);
    assert_eq!(plain, optimized, "optimizer must not change results");
    assert!(
        m_opt.cpu_time <= m_plain.cpu_time,
        "fused filters and pruned dead code cost less: {} vs {}",
        m_opt.cpu_time,
        m_plain.cpu_time
    );
}
