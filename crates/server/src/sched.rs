//! Bounded admission queue with per-tenant weighted-fair scheduling.
//!
//! The queue implements *start-time fair queueing* over tenants: every
//! admitted job is stamped with a virtual finish time
//! `vft = max(virtual_now, tenant_last_vft) + COST_SCALE / weight`, and
//! dispatch always picks the smallest `(vft, id)`. A tenant with weight
//! `2w` therefore drains twice as fast as one with weight `w` while both
//! are backlogged, yet an idle tenant's first job is never penalized for
//! the capacity it declined to use (its virtual clock snaps forward to
//! `virtual_now` on arrival).
//!
//! The queue is **bounded**: [`FairQueue::push`] refuses admission once
//! `capacity` jobs are waiting, returning [`QueueFull`] so callers can
//! surface explicit backpressure instead of buffering without limit.
//! Dispatch order is a pure function of the admission sequence — no
//! clocks, no randomness — which keeps server-level tests and the
//! fairness properties deterministic.

use std::collections::{BinaryHeap, HashMap};

/// Virtual cost of one job at weight 1. A large power of two so integer
/// division by small weights keeps plenty of resolution.
const COST_SCALE: u64 = 1 << 20;

/// Admission refusal: the queue already holds `capacity` jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured bound that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "admission queue full ({} jobs waiting)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

#[derive(Debug)]
struct Entry<T> {
    vft: u64,
    id: u64,
    tenant: String,
    payload: T,
}

// BinaryHeap is a max-heap; order entries so the *smallest*
// `(vft, id)` surfaces first. Ties on vft break by admission id, so
// equal-weight tenants interleave in arrival order.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.vft, other.id).cmp(&(self.vft, self.id))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.vft, self.id) == (other.vft, other.id)
    }
}
impl<T> Eq for Entry<T> {}

/// A dispatched job, in weighted-fair order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dispatched<T> {
    /// Monotonic admission id (0, 1, 2, ... in submit order).
    pub id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// The queued payload.
    pub payload: T,
}

/// Bounded weighted-fair admission queue (see the module docs).
#[derive(Debug)]
pub struct FairQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    capacity: usize,
    default_weight: u64,
    weights: HashMap<String, u64>,
    tenant_vft: HashMap<String, u64>,
    virtual_now: u64,
    next_id: u64,
}

impl<T> FairQueue<T> {
    /// An empty queue admitting at most `capacity` waiting jobs. Tenants
    /// without an explicit weight get `default_weight` (clamped to ≥ 1).
    pub fn new(capacity: usize, default_weight: u64) -> Self {
        FairQueue {
            heap: BinaryHeap::new(),
            capacity,
            default_weight: default_weight.max(1),
            weights: HashMap::new(),
            tenant_vft: HashMap::new(),
            virtual_now: 0,
            next_id: 0,
        }
    }

    /// Sets one tenant's weight (clamped to ≥ 1). Takes effect for jobs
    /// admitted after the call.
    pub fn set_weight(&mut self, tenant: &str, weight: u64) {
        self.weights.insert(tenant.to_owned(), weight.max(1));
    }

    /// The effective weight of `tenant`.
    pub fn weight(&self, tenant: &str) -> u64 {
        self.weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, or refuses with [`QueueFull`] when `capacity` jobs
    /// are already waiting. Returns the job's admission id.
    pub fn push(&mut self, tenant: &str, payload: T) -> Result<u64, QueueFull> {
        if self.heap.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        let start = self
            .tenant_vft
            .get(tenant)
            .copied()
            .unwrap_or(0)
            .max(self.virtual_now);
        let vft = start + COST_SCALE / self.weight(tenant);
        self.tenant_vft.insert(tenant.to_owned(), vft);
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Entry {
            vft,
            id,
            tenant: tenant.to_owned(),
            payload,
        });
        Ok(id)
    }

    /// Dispatches the next job in weighted-fair order, advancing the
    /// virtual clock to its finish time.
    pub fn pop(&mut self) -> Option<Dispatched<T>> {
        let entry = self.heap.pop()?;
        self.virtual_now = self.virtual_now.max(entry.vft);
        Some(Dispatched {
            id: entry.id,
            tenant: entry.tenant,
            payload: entry.payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_tenants(q: &mut FairQueue<()>) -> Vec<String> {
        std::iter::from_fn(|| q.pop()).map(|d| d.tenant).collect()
    }

    #[test]
    fn bounded_admission_rejects_explicitly() {
        let mut q = FairQueue::new(2, 1);
        assert_eq!(q.push("a", ()), Ok(0));
        assert_eq!(q.push("a", ()), Ok(1));
        assert_eq!(q.push("b", ()), Err(QueueFull { capacity: 2 }));
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        assert_eq!(q.push("b", ()), Ok(2), "capacity freed by dispatch");
    }

    #[test]
    fn equal_weights_interleave_in_arrival_order() {
        let mut q = FairQueue::new(16, 1);
        for _ in 0..3 {
            q.push("a", ()).unwrap();
            q.push("b", ()).unwrap();
        }
        assert_eq!(drain_tenants(&mut q), ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn double_weight_drains_twice_as_fast() {
        let mut q = FairQueue::new(32, 1);
        q.set_weight("heavy", 2);
        // Backlog both tenants fully before dispatching anything.
        for _ in 0..6 {
            q.push("heavy", ()).unwrap();
        }
        for _ in 0..3 {
            q.push("light", ()).unwrap();
        }
        let order = drain_tenants(&mut q);
        // In every prefix, heavy gets about twice light's dispatches.
        let mut heavy = 0usize;
        let mut light = 0usize;
        for t in &order {
            if t == "heavy" {
                heavy += 1;
            } else {
                light += 1;
            }
            assert!(
                heavy + 1 >= light * 2,
                "weight-2 tenant fell behind 2:1 in prefix: {order:?}"
            );
        }
        assert_eq!(heavy, 6);
        assert_eq!(light, 3);
    }

    #[test]
    fn idle_tenant_is_not_penalized_on_arrival() {
        let mut q = FairQueue::new(32, 1);
        for _ in 0..4 {
            q.push("busy", ()).unwrap();
        }
        // Drain two: virtual_now advances past busy's early finish tags.
        q.pop().unwrap();
        q.pop().unwrap();
        // A newcomer starts at virtual_now, not at zero — it must not
        // jump ahead of jobs already dispatched, but competes fairly
        // with busy's remaining backlog rather than waiting it out.
        q.push("newcomer", ()).unwrap();
        let order = drain_tenants(&mut q);
        // The newcomer's finish tag ties busy's third job and loses the
        // arrival-order tiebreak, then beats busy's fourth: it
        // interleaves into the backlog instead of waiting it out.
        assert_eq!(order, vec!["busy", "newcomer", "busy"]);
    }

    #[test]
    fn dispatch_order_is_deterministic() {
        let build = || {
            let mut q = FairQueue::new(64, 1);
            q.set_weight("a", 3);
            q.set_weight("b", 2);
            for i in 0..30 {
                let t = ["a", "b", "c"][i % 3];
                q.push(t, i).unwrap();
            }
            std::iter::from_fn(move || q.pop())
                .map(|d| (d.id, d.tenant, d.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
