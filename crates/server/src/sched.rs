//! Bounded admission queue with per-tenant weighted-fair scheduling.
//!
//! The queue implements *start-time fair queueing* over tenants: every
//! admitted job is stamped with a virtual finish time
//! `vft = max(virtual_now, tenant_last_vft) + COST_SCALE / weight`, and
//! dispatch always picks the smallest `(vft, id)`. A tenant with weight
//! `2w` therefore drains twice as fast as one with weight `w` while both
//! are backlogged, yet an idle tenant's first job is never penalized for
//! the capacity it declined to use (its virtual clock snaps forward to
//! `virtual_now` on arrival).
//!
//! The queue is **bounded**: [`FairQueue::push`] refuses admission once
//! `capacity` jobs are waiting ([`AdmitError::Full`]) or the tenant is
//! at its configured in-flight quota ([`AdmitError::QuotaExceeded`]),
//! so callers see explicit backpressure instead of buffering without
//! limit. A job counts against its tenant's quota from admission until
//! [`FairQueue::release`] (completion) or [`FairQueue::remove`]
//! (cancellation before dispatch). Dispatch order is a pure function of
//! the admission sequence — no clocks, no randomness — which keeps
//! server-level tests and the fairness properties deterministic.

use std::collections::{BinaryHeap, HashMap};

/// Virtual cost of one job at weight 1. A large power of two so integer
/// division by small weights keeps plenty of resolution.
const COST_SCALE: u64 = 1 << 20;

/// Admission refusal: the queue already holds `capacity` jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured bound that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "admission queue full ({} jobs waiting)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// Admission refusal: queue at capacity, or the tenant at its in-flight
/// quota. Both are explicit backpressure — never a silent drop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue already holds `capacity` jobs (any tenant).
    Full(QueueFull),
    /// The tenant already has `limit` jobs in flight (queued or
    /// executing; in-flight counts drop on [`FairQueue::release`] or
    /// [`FairQueue::remove`]).
    QuotaExceeded {
        /// The tenant that hit its quota.
        tenant: String,
        /// The configured per-tenant in-flight bound.
        limit: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Full(full) => full.fmt(f),
            AdmitError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant '{tenant}' at its in-flight quota ({limit})")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

#[derive(Debug)]
struct Entry<T> {
    vft: u64,
    id: u64,
    tenant: String,
    payload: T,
}

// BinaryHeap is a max-heap; order entries so the *smallest*
// `(vft, id)` surfaces first. Ties on vft break by admission id, so
// equal-weight tenants interleave in arrival order.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.vft, other.id).cmp(&(self.vft, self.id))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.vft, self.id) == (other.vft, other.id)
    }
}
impl<T> Eq for Entry<T> {}

/// A dispatched job, in weighted-fair order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dispatched<T> {
    /// Monotonic admission id (0, 1, 2, ... in submit order).
    pub id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// The queued payload.
    pub payload: T,
}

/// Bounded weighted-fair admission queue (see the module docs).
#[derive(Debug)]
pub struct FairQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    capacity: usize,
    default_weight: u64,
    weights: HashMap<String, u64>,
    tenant_vft: HashMap<String, u64>,
    virtual_now: u64,
    next_id: u64,
    /// Per-tenant in-flight bounds; absent means unlimited.
    max_inflight: HashMap<String, usize>,
    /// Jobs admitted and not yet released (queued **or** executing).
    inflight: HashMap<String, usize>,
}

impl<T> FairQueue<T> {
    /// An empty queue admitting at most `capacity` waiting jobs. Tenants
    /// without an explicit weight get `default_weight` (clamped to ≥ 1).
    pub fn new(capacity: usize, default_weight: u64) -> Self {
        FairQueue {
            heap: BinaryHeap::new(),
            capacity,
            default_weight: default_weight.max(1),
            weights: HashMap::new(),
            tenant_vft: HashMap::new(),
            virtual_now: 0,
            next_id: 0,
            max_inflight: HashMap::new(),
            inflight: HashMap::new(),
        }
    }

    /// Sets one tenant's weight (clamped to ≥ 1). Takes effect for jobs
    /// admitted after the call.
    pub fn set_weight(&mut self, tenant: &str, weight: u64) {
        self.weights.insert(tenant.to_owned(), weight.max(1));
    }

    /// The effective weight of `tenant`.
    pub fn weight(&self, tenant: &str) -> u64 {
        self.weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bounds `tenant` to at most `limit` in-flight jobs (queued or
    /// executing). Takes effect for jobs admitted after the call; `0`
    /// refuses every submission from the tenant.
    pub fn set_max_inflight(&mut self, tenant: &str, limit: usize) {
        self.max_inflight.insert(tenant.to_owned(), limit);
    }

    /// The tenant's configured in-flight bound, if any.
    pub fn max_inflight(&self, tenant: &str) -> Option<usize> {
        self.max_inflight.get(tenant).copied()
    }

    /// Jobs the tenant currently has in flight (queued or executing).
    pub fn inflight(&self, tenant: &str) -> usize {
        self.inflight.get(tenant).copied().unwrap_or(0)
    }

    /// Marks one of the tenant's in-flight jobs finished, freeing quota.
    /// Callers pair every dispatched-and-completed job with exactly one
    /// release; removed (cancelled) jobs release implicitly.
    pub fn release(&mut self, tenant: &str) {
        if let Some(n) = self.inflight.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.inflight.remove(tenant);
            }
        }
    }

    /// Admits a job, or refuses explicitly: [`AdmitError::QuotaExceeded`]
    /// when the tenant is at its in-flight bound,
    /// [`AdmitError::Full`] when `capacity` jobs are already waiting.
    /// Returns the job's admission id.
    pub fn push(&mut self, tenant: &str, payload: T) -> Result<u64, AdmitError> {
        if let Some(&limit) = self.max_inflight.get(tenant) {
            if self.inflight(tenant) >= limit {
                return Err(AdmitError::QuotaExceeded {
                    tenant: tenant.to_owned(),
                    limit,
                });
            }
        }
        if self.heap.len() >= self.capacity {
            return Err(AdmitError::Full(QueueFull {
                capacity: self.capacity,
            }));
        }
        *self.inflight.entry(tenant.to_owned()).or_insert(0) += 1;
        let start = self
            .tenant_vft
            .get(tenant)
            .copied()
            .unwrap_or(0)
            .max(self.virtual_now);
        let vft = start + COST_SCALE / self.weight(tenant);
        self.tenant_vft.insert(tenant.to_owned(), vft);
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Entry {
            vft,
            id,
            tenant: tenant.to_owned(),
            payload,
        });
        Ok(id)
    }

    /// Dispatches the next job in weighted-fair order, advancing the
    /// virtual clock to its finish time. The job stays in flight for
    /// quota purposes until [`FairQueue::release`].
    pub fn pop(&mut self) -> Option<Dispatched<T>> {
        let entry = self.heap.pop()?;
        self.virtual_now = self.virtual_now.max(entry.vft);
        Some(Dispatched {
            id: entry.id,
            tenant: entry.tenant,
            payload: entry.payload,
        })
    }

    /// Removes a still-queued job by admission id, returning it (with its
    /// quota released) — the cancellation path. `None` when the id was
    /// already dispatched, already removed, or never admitted. The
    /// virtual clocks are left untouched: the tenant's later jobs keep
    /// the finish tags they were admitted with, so cancellation cannot
    /// be used to jump the fair-share line.
    pub fn remove(&mut self, id: u64) -> Option<Dispatched<T>> {
        if !self.heap.iter().any(|e| e.id == id) {
            return None;
        }
        let mut removed = None;
        let entries = std::mem::take(&mut self.heap).into_vec();
        for entry in entries {
            if entry.id == id {
                removed = Some(entry);
            } else {
                self.heap.push(entry);
            }
        }
        let entry = removed?;
        self.release(&entry.tenant);
        Some(Dispatched {
            id: entry.id,
            tenant: entry.tenant,
            payload: entry.payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_tenants(q: &mut FairQueue<()>) -> Vec<String> {
        std::iter::from_fn(|| q.pop()).map(|d| d.tenant).collect()
    }

    #[test]
    fn bounded_admission_rejects_explicitly() {
        let mut q = FairQueue::new(2, 1);
        assert_eq!(q.push("a", ()), Ok(0));
        assert_eq!(q.push("a", ()), Ok(1));
        assert_eq!(
            q.push("b", ()),
            Err(AdmitError::Full(QueueFull { capacity: 2 }))
        );
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        assert_eq!(q.push("b", ()), Ok(2), "capacity freed by dispatch");
    }

    #[test]
    fn quota_bounds_inflight_until_release() {
        let mut q = FairQueue::new(16, 1);
        q.set_max_inflight("capped", 2);
        assert_eq!(q.push("capped", ()), Ok(0));
        assert_eq!(q.push("capped", ()), Ok(1));
        assert_eq!(
            q.push("capped", ()),
            Err(AdmitError::QuotaExceeded {
                tenant: "capped".to_owned(),
                limit: 2
            })
        );
        // Other tenants are unaffected by a sibling's quota.
        assert_eq!(q.push("free", ()), Ok(2));
        // Dispatch alone does NOT free quota: the job is executing.
        q.pop().unwrap();
        assert_eq!(q.inflight("capped"), 2);
        assert!(matches!(
            q.push("capped", ()),
            Err(AdmitError::QuotaExceeded { .. })
        ));
        // Completion releases it.
        q.release("capped");
        assert_eq!(q.inflight("capped"), 1);
        assert_eq!(q.push("capped", ()), Ok(3));
    }

    #[test]
    fn zero_quota_refuses_every_submission() {
        let mut q = FairQueue::new(16, 1);
        q.set_max_inflight("banned", 0);
        assert!(matches!(
            q.push("banned", ()),
            Err(AdmitError::QuotaExceeded { limit: 0, .. })
        ));
    }

    #[test]
    fn remove_pulls_queued_job_and_frees_quota() {
        let mut q = FairQueue::new(16, 1);
        q.set_max_inflight("t", 2);
        let a = q.push("t", 'a').unwrap();
        let b = q.push("t", 'b').unwrap();
        let removed = q.remove(a).expect("still queued");
        assert_eq!((removed.id, removed.payload), (a, 'a'));
        assert_eq!(q.inflight("t"), 1, "cancellation releases quota");
        assert!(q.remove(a).is_none(), "double remove is None");
        // Quota freed by the removal admits a replacement.
        assert_eq!(q.push("t", 'c'), Ok(2));
        // Dispatched jobs can no longer be removed.
        let next = q.pop().unwrap();
        assert_eq!(next.id, b, "removal left the heap order intact");
        assert!(q.remove(b).is_none());
    }

    #[test]
    fn equal_weights_interleave_in_arrival_order() {
        let mut q = FairQueue::new(16, 1);
        for _ in 0..3 {
            q.push("a", ()).unwrap();
            q.push("b", ()).unwrap();
        }
        assert_eq!(drain_tenants(&mut q), ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn double_weight_drains_twice_as_fast() {
        let mut q = FairQueue::new(32, 1);
        q.set_weight("heavy", 2);
        // Backlog both tenants fully before dispatching anything.
        for _ in 0..6 {
            q.push("heavy", ()).unwrap();
        }
        for _ in 0..3 {
            q.push("light", ()).unwrap();
        }
        let order = drain_tenants(&mut q);
        // In every prefix, heavy gets about twice light's dispatches.
        let mut heavy = 0usize;
        let mut light = 0usize;
        for t in &order {
            if t == "heavy" {
                heavy += 1;
            } else {
                light += 1;
            }
            assert!(
                heavy + 1 >= light * 2,
                "weight-2 tenant fell behind 2:1 in prefix: {order:?}"
            );
        }
        assert_eq!(heavy, 6);
        assert_eq!(light, 3);
    }

    #[test]
    fn idle_tenant_is_not_penalized_on_arrival() {
        let mut q = FairQueue::new(32, 1);
        for _ in 0..4 {
            q.push("busy", ()).unwrap();
        }
        // Drain two: virtual_now advances past busy's early finish tags.
        q.pop().unwrap();
        q.pop().unwrap();
        // A newcomer starts at virtual_now, not at zero — it must not
        // jump ahead of jobs already dispatched, but competes fairly
        // with busy's remaining backlog rather than waiting it out.
        q.push("newcomer", ()).unwrap();
        let order = drain_tenants(&mut q);
        // The newcomer's finish tag ties busy's third job and loses the
        // arrival-order tiebreak, then beats busy's fourth: it
        // interleaves into the backlog instead of waiting it out.
        assert_eq!(order, vec!["busy", "newcomer", "busy"]);
    }

    #[test]
    fn dispatch_order_is_deterministic() {
        let build = || {
            let mut q = FairQueue::new(64, 1);
            q.set_weight("a", 3);
            q.set_weight("b", 2);
            for i in 0..30 {
                let t = ["a", "b", "c"][i % 3];
                q.push(t, i).unwrap();
            }
            std::iter::from_fn(move || q.pop())
                .map(|d| (d.id, d.tenant, d.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
