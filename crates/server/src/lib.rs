//! `cbft-server`: the trusted control tier as a **long-running,
//! multi-tenant job server**.
//!
//! The paper's §1.4 control tier is a service — request handler,
//! execution tracker, resource manager and verifier — yet the rest of
//! this workspace runs exactly one job per process. [`JobServer`] closes
//! that gap:
//!
//! * **Admission queue** ([`sched::FairQueue`]): bounded depth, explicit
//!   [`RejectReason::QueueFull`] responses when it overflows — callers
//!   see backpressure, jobs are never silently dropped.
//! * **Per-tenant weighted fairness**: start-time fair queueing over
//!   tenants, so a tenant flooding the queue cannot starve the others
//!   beyond its configured share.
//! * **Concurrent execution slots**: `slots` worker threads each run one
//!   admitted job at a time through its own [`ParallelExecutor`] — every
//!   job keeps private verifier/suspicion state — while all jobs
//!   multiplex over **one shared compute pool**
//!   ([`ParallelExecutor::set_compute_pool`]) instead of spawning a pool
//!   per job.
//! * **Server-level metrics**: admitted/rejected/completed counters, a
//!   queue-depth peak gauge and per-tenant latency histograms land in a
//!   [`Metrics`] hub under the `cbft_server_*` names, rendered by the
//!   cbft-metrics health report.
//!
//! # Determinism
//!
//! A job's verdict, transcript and outputs are a pure function of its
//! own [`JobSpec`] — executor seeding is per-job, the shared pool never
//! affects outcomes (DESIGN.md §5e), and storage is per-replica inside
//! each executor. Co-tenants change *when* a job runs, never *what* it
//! computes; `tests/server.rs` pins solo-vs-loaded byte-identity.
//!
//! # Example
//!
//! ```
//! use cbft_dataflow::{Record, Value};
//! use cbft_server::{JobServer, JobSpec, ServerConfig, SubmitOutcome};
//!
//! let server = JobServer::start(ServerConfig::default());
//! let rows: Vec<Record> = (0..60)
//!     .map(|i| Record::new(vec![Value::Int(i % 4), Value::Int(i)]))
//!     .collect();
//! let spec = JobSpec::new(
//!     "acme",
//!     "a = LOAD 'edges' AS (u, f);
//!      g = GROUP a BY u;
//!      c = FOREACH g GENERATE group, COUNT(a) AS n;
//!      STORE c INTO 'counts';",
//! )
//! .input("edges", rows)
//! .seed(7);
//! let handle = match server.submit(spec) {
//!     SubmitOutcome::Admitted(h) => h,
//!     SubmitOutcome::Rejected(r) => panic!("empty server rejected: {r}"),
//! };
//! let result = handle.wait();
//! assert!(result.outcome.unwrap().verified());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use cbft_dataflow::Record;
use cbft_mapreduce::{Behavior, ComputePool};
use cbft_metrics::{names as metric_names, Domain, LabelValue, Metrics, Snapshot};
use cbft_trace::Tracer;
use clusterbft::{ExecutorConfig, ParallelExecutor, ParallelOutcome, SubmitError};
use crossbeam::channel::{unbounded, Receiver, Sender};

use sched::{AdmitError, FairQueue};

/// Configuration for a [`JobServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Concurrent execution slots (worker threads running admitted
    /// jobs). Clamped to ≥ 1.
    pub slots: usize,
    /// Maximum jobs waiting in the admission queue; submissions beyond
    /// it are rejected with [`RejectReason::QueueFull`].
    pub queue_depth: usize,
    /// Threads in the compute pool **shared by every job** for
    /// data-parallel task payloads. `1` runs payloads inline (the
    /// default: with many concurrent jobs, job-level parallelism already
    /// fills the cores); `0` sizes the pool to the host.
    pub compute_threads: usize,
    /// Fair-share weight for tenants without an explicit entry.
    pub default_weight: u64,
    /// Per-tenant fair-share weights.
    pub weights: Vec<(String, u64)>,
    /// Per-tenant in-flight quotas (queued + executing). Tenants without
    /// an entry are unbounded; submissions over the quota are rejected
    /// with [`RejectReason::QuotaExceeded`].
    pub max_inflight: Vec<(String, usize)>,
    /// Metrics hub receiving the `cbft_server_*` series. Disabled by
    /// default.
    pub metrics: Metrics,
    /// Tracer shared by every slot worker. Each job records through a
    /// [`cbft_trace::ScopedSink`] keyed by its admission id, so
    /// co-tenant events land on disjoint pid bands and never interleave
    /// on one track. Disabled by default.
    pub tracer: Tracer,
    /// Give each job a private metrics hub and deliver its sim-domain
    /// snapshot on [`JobResult::snapshot`]. Per-job isolation keeps
    /// co-tenant forensics (suspicion bands, divergence gauges) from
    /// colliding in the shared server hub. Off by default.
    pub job_metrics: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            slots: 2,
            queue_depth: 64,
            compute_threads: 1,
            default_weight: 1,
            weights: Vec::new(),
            max_inflight: Vec::new(),
            metrics: Metrics::disabled(),
            tracer: Tracer::disabled(),
            job_metrics: false,
        }
    }
}

/// One submitted job: a tenant, a script, its inputs and the executor
/// configuration it runs under.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The submitting tenant (fair-share identity and metrics label).
    pub tenant: String,
    /// Script source text.
    pub script: String,
    /// Input data sets by name.
    pub inputs: Vec<(String, Vec<Record>)>,
    /// Replica faults to inject, `(replica uid, behavior)` — chaos jobs
    /// ride through the server like healthy ones.
    pub faults: Vec<(usize, Behavior)>,
    /// Per-job executor configuration. `master_seed` is the job's seed;
    /// `compute_threads` is ignored (the server's shared pool is used).
    pub exec: ExecutorConfig,
}

impl JobSpec {
    /// A job with default executor configuration (2 replica worker
    /// threads, the paper's escalation schedule).
    pub fn new(tenant: &str, script: &str) -> Self {
        JobSpec {
            tenant: tenant.to_owned(),
            script: script.to_owned(),
            inputs: Vec::new(),
            faults: Vec::new(),
            exec: ExecutorConfig {
                threads: 2,
                compute_threads: 1,
                ..ExecutorConfig::default()
            },
        }
    }

    /// Adds an input data set.
    #[must_use]
    pub fn input(mut self, name: &str, records: Vec<Record>) -> Self {
        self.inputs.push((name.to_owned(), records));
        self
    }

    /// Sets the job's simulation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.exec.master_seed = seed;
        self
    }

    /// Replaces the executor configuration.
    #[must_use]
    pub fn exec(mut self, exec: ExecutorConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Injects a replica fault.
    #[must_use]
    pub fn fault(mut self, uid: usize, behavior: Behavior) -> Self {
        self.faults.push((uid, behavior));
        self
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity — retry later. This is
    /// the server's backpressure signal, never a silent drop.
    QueueFull {
        /// The configured queue bound that was hit.
        depth: usize,
    },
    /// The tenant is at its configured in-flight quota — retry after one
    /// of its jobs completes. Like queue-full, always explicit.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
        /// Its configured in-flight bound.
        limit: usize,
    },
    /// The server is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth } => {
                write!(f, "queue full ({depth} jobs waiting)")
            }
            RejectReason::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant '{tenant}' at its in-flight quota ({limit})")
            }
            RejectReason::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

/// Why an admitted job produced no [`ParallelOutcome`].
#[derive(Debug)]
pub enum JobError {
    /// The executor refused or failed the job (parse error, missing
    /// input, replica worker panic).
    Exec(SubmitError),
    /// The job was cancelled through [`JobHandle::cancel`] while still
    /// queued; it never reached an execution slot.
    Cancelled,
    /// The slot worker died (panicked) before delivering a result. The
    /// job's fate is unknown; resubmit to a healthy server.
    WorkerLost,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Exec(e) => e.fmt(f),
            JobError::Cancelled => write!(f, "job cancelled before dispatch"),
            JobError::WorkerLost => write!(f, "slot worker lost before completion"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SubmitError> for JobError {
    fn from(e: SubmitError) -> Self {
        JobError::Exec(e)
    }
}

/// The server's answer to [`JobServer::submit`].
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The job is queued; await its [`JobResult`] through the handle.
    Admitted(JobHandle),
    /// Explicit backpressure — the job was **not** queued.
    Rejected(RejectReason),
}

impl SubmitOutcome {
    /// Unwraps the admitted handle.
    ///
    /// # Panics
    ///
    /// Panics when the submission was rejected.
    pub fn expect_admitted(self) -> JobHandle {
        match self {
            SubmitOutcome::Admitted(h) => h,
            SubmitOutcome::Rejected(r) => panic!("job rejected: {r}"),
        }
    }
}

/// Awaitable handle to one admitted job.
pub struct JobHandle {
    /// Server-wide admission id (submit order).
    pub id: u64,
    /// The submitting tenant.
    pub tenant: String,
    rx: Receiver<JobResult>,
    /// Back-reference for [`JobHandle::cancel`]; weak so an outstanding
    /// handle never keeps a dropped server's state alive.
    server: Weak<Inner>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    /// Blocks until the job finishes. If the slot worker executing the
    /// job died (panicked) before delivering a result, returns a
    /// [`JobError::WorkerLost`] result instead of panicking the caller.
    pub fn wait(self) -> JobResult {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => JobResult {
                id: self.id,
                tenant: self.tenant,
                outcome: Err(JobError::WorkerLost),
                queue_us: 0,
                exec_us: 0,
                total_us: 0,
                timeline: JobTimeline::default(),
                snapshot: None,
            },
        }
    }

    /// Returns the result if the job already finished.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.rx.try_recv().ok()
    }

    /// Cancels the job if it is still waiting in the admission queue:
    /// the job is removed (its quota freed), counted under
    /// `cbft_server_jobs_cancelled_total`, and its result arrives as
    /// [`JobError::Cancelled`]. Returns `false` when the job was already
    /// dispatched to a slot (or finished) — execution is not interrupted.
    pub fn cancel(&self) -> bool {
        let Some(inner) = self.server.upgrade() else {
            return false;
        };
        let removed = {
            let mut state = inner.state.lock().expect("server state poisoned");
            state.queue.remove(self.id)
        };
        let Some(dispatched) = removed else {
            return false;
        };
        if inner.metrics.enabled() {
            inner
                .metrics
                .add(Domain::Wall, metric_names::SERVER_CANCELLED, &[], 1);
        }
        let Pending {
            tx,
            submitted,
            admitted_us,
            ..
        } = dispatched.payload;
        let waited = submitted.elapsed().as_micros() as u64;
        let _ = tx.send(JobResult {
            id: self.id,
            tenant: dispatched.tenant,
            outcome: Err(JobError::Cancelled),
            queue_us: waited,
            exec_us: 0,
            total_us: waited,
            timeline: JobTimeline {
                admitted_us,
                dispatched_us: 0,
                completed_us: admitted_us + waited,
            },
            snapshot: None,
        });
        true
    }
}

/// Per-job lifecycle timestamps, in wall microseconds since the server
/// started. `0` marks a stage the job never reached (e.g. dispatch for
/// a cancelled job). Together with the durations on [`JobResult`] this
/// is the admit → queue → execute → verify timeline operators read off
/// the per-job result lines and the per-tenant summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobTimeline {
    /// When the admission queue accepted the job.
    pub admitted_us: u64,
    /// When a slot worker picked the job up (queueing ended).
    pub dispatched_us: u64,
    /// When execution and verification finished.
    pub completed_us: u64,
}

/// What one job's execution produced, with its latency breakdown.
#[derive(Debug)]
pub struct JobResult {
    /// Admission id.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// The verified outcome, or why the job never produced one
    /// (executor error, cancellation, lost worker).
    pub outcome: Result<ParallelOutcome, JobError>,
    /// Wall microseconds spent waiting in the admission queue.
    pub queue_us: u64,
    /// Wall microseconds spent executing.
    pub exec_us: u64,
    /// Wall microseconds from submission to completion.
    pub total_us: u64,
    /// Lifecycle timestamps relative to server start.
    pub timeline: JobTimeline,
    /// The job's private sim-domain metrics snapshot, when the server
    /// runs with [`ServerConfig::job_metrics`]. Deterministic per job:
    /// co-tenants and thread counts never change it.
    pub snapshot: Option<Snapshot>,
}

impl JobResult {
    /// Whether the job ran and every output reached a digest quorum.
    pub fn verified(&self) -> bool {
        self.outcome.as_ref().is_ok_and(ParallelOutcome::verified)
    }
}

struct Pending {
    spec: JobSpec,
    tx: Sender<JobResult>,
    submitted: Instant,
    /// µs since server start at admission (timeline origin).
    admitted_us: u64,
}

struct State {
    queue: FairQueue<Pending>,
    draining: bool,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    pool: ComputePool,
    metrics: Metrics,
    tracer: Tracer,
    queue_depth: usize,
    job_metrics: bool,
    /// Timeline origin: the instant the server started.
    epoch: Instant,
}

/// The multi-tenant job server. See the crate docs.
pub struct JobServer {
    inner: Arc<Inner>,
    workers: VecDeque<JoinHandle<()>>,
}

impl JobServer {
    /// Starts the server: spawns `config.slots` execution workers and
    /// the shared compute pool.
    pub fn start(config: ServerConfig) -> Self {
        let mut queue = FairQueue::new(config.queue_depth, config.default_weight);
        for (tenant, weight) in &config.weights {
            queue.set_weight(tenant, *weight);
        }
        for (tenant, limit) in &config.max_inflight {
            queue.set_max_inflight(tenant, *limit);
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue,
                draining: false,
            }),
            work_ready: Condvar::new(),
            pool: ComputePool::with_metrics(config.compute_threads, config.metrics.clone()),
            metrics: config.metrics,
            tracer: config.tracer,
            queue_depth: config.queue_depth,
            job_metrics: config.job_metrics,
            epoch: Instant::now(),
        });
        let slots = config.slots.max(1);
        let workers = (0..slots)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cbftd-slot-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn job-server worker")
            })
            .collect();
        JobServer { inner, workers }
    }

    /// Submits a job. Returns immediately: either an admitted handle or
    /// an explicit rejection (queue full / shutting down).
    pub fn submit(&self, spec: JobSpec) -> SubmitOutcome {
        let tenant = spec.tenant.clone();
        let mut state = self.inner.state.lock().expect("server state poisoned");
        if state.draining {
            return SubmitOutcome::Rejected(RejectReason::ShuttingDown);
        }
        let (tx, rx) = unbounded();
        let pending = Pending {
            spec,
            tx,
            submitted: Instant::now(),
            admitted_us: self.inner.epoch.elapsed().as_micros() as u64,
        };
        match state.queue.push(&tenant, pending) {
            Ok(id) => {
                let depth = state.queue.len();
                drop(state);
                if self.inner.metrics.enabled() {
                    let m = &self.inner.metrics;
                    m.add(Domain::Wall, metric_names::SERVER_ADMITTED, &[], 1);
                    m.gauge_max(
                        Domain::Wall,
                        metric_names::SERVER_QUEUE_PEAK,
                        &[],
                        depth as u64,
                    );
                }
                self.inner.work_ready.notify_one();
                SubmitOutcome::Admitted(JobHandle {
                    id,
                    tenant,
                    rx,
                    server: Arc::downgrade(&self.inner),
                })
            }
            Err(err) => {
                drop(state);
                if self.inner.metrics.enabled() {
                    self.inner
                        .metrics
                        .add(Domain::Wall, metric_names::SERVER_REJECTED, &[], 1);
                }
                SubmitOutcome::Rejected(match err {
                    AdmitError::Full(_) => RejectReason::QueueFull {
                        depth: self.inner.queue_depth,
                    },
                    AdmitError::QuotaExceeded { tenant, limit } => {
                        RejectReason::QuotaExceeded { tenant, limit }
                    }
                })
            }
        }
    }

    /// Jobs currently waiting for a slot.
    pub fn queued(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("server state poisoned")
            .queue
            .len()
    }

    /// Drains and stops the server: already-admitted jobs finish, new
    /// submissions are rejected, workers join.
    pub fn shutdown(mut self) {
        {
            let mut state = self.inner.state.lock().expect("server state poisoned");
            state.draining = true;
        }
        self.inner.work_ready.notify_all();
        while let Some(w) = self.workers.pop_front() {
            w.join().expect("job-server worker panicked");
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        // A dropped (not shut down) server still drains: mark and join.
        if let Ok(mut state) = self.inner.state.lock() {
            state.draining = true;
        }
        self.inner.work_ready.notify_all();
        while let Some(w) = self.workers.pop_front() {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let dispatched = {
            let mut state = inner.state.lock().expect("server state poisoned");
            loop {
                if let Some(d) = state.queue.pop() {
                    break d;
                }
                if state.draining {
                    return;
                }
                state = inner.work_ready.wait(state).expect("server state poisoned");
            }
        };
        let id = dispatched.id;
        let tenant = dispatched.tenant;
        let Pending {
            spec,
            tx,
            submitted,
            admitted_us,
        } = dispatched.payload;

        let started = Instant::now();
        let dispatched_us = inner.epoch.elapsed().as_micros() as u64;
        let queue_us = (started - submitted).as_micros() as u64;
        let (outcome, snapshot) = run_job(inner, id, spec);
        let outcome = outcome.map_err(JobError::from);
        let finished = Instant::now();
        let completed_us = inner.epoch.elapsed().as_micros() as u64;
        let exec_us = (finished - started).as_micros() as u64;
        let total_us = (finished - submitted).as_micros() as u64;

        // The job no longer occupies its tenant's in-flight quota slot.
        inner
            .state
            .lock()
            .expect("server state poisoned")
            .queue
            .release(&tenant);

        if inner.metrics.enabled() {
            let m = &inner.metrics;
            let by_tenant = [("tenant", LabelValue::Owned(tenant.clone()))];
            m.add(Domain::Wall, metric_names::SERVER_COMPLETED, &by_tenant, 1);
            if outcome.as_ref().is_ok_and(ParallelOutcome::verified) {
                m.add(Domain::Wall, metric_names::SERVER_VERIFIED, &by_tenant, 1);
            }
            if outcome.is_err() {
                m.add(Domain::Wall, metric_names::SERVER_FAILED, &by_tenant, 1);
            }
            m.observe(
                Domain::Wall,
                metric_names::SERVER_JOB_LATENCY_US,
                &by_tenant,
                total_us,
            );
            m.observe(
                Domain::Wall,
                metric_names::SERVER_JOB_QUEUE_US,
                &by_tenant,
                queue_us,
            );
        }
        // A dropped handle is fine — the job still ran; the send just
        // has no listener.
        let _ = tx.send(JobResult {
            id,
            tenant,
            outcome,
            queue_us,
            exec_us,
            total_us,
            timeline: JobTimeline {
                admitted_us,
                dispatched_us,
                completed_us,
            },
            snapshot,
        });
    }
}

/// Executes one job in its own [`ParallelExecutor`] (private verifier
/// and suspicion state), over the server's shared compute pool. When the
/// server has a tracer, the job records through a per-job scoped sink so
/// concurrently executing co-tenants write to disjoint pid bands. With
/// [`ServerConfig::job_metrics`], the job gets a private metrics hub —
/// its sim-domain series (suspicion bands, divergence gauges) would
/// collide across co-tenants in a shared hub — and the second element
/// carries the job's sim snapshot.
fn run_job(
    inner: &Inner,
    id: u64,
    spec: JobSpec,
) -> (Result<ParallelOutcome, SubmitError>, Option<Snapshot>) {
    let mut exec = ParallelExecutor::new(spec.exec);
    exec.set_compute_pool(inner.pool.clone());
    if inner.tracer.enabled() {
        exec.set_tracer(inner.tracer.scoped(id));
    }
    let hub = if inner.job_metrics {
        let hub = Metrics::new();
        exec.set_metrics(hub.clone());
        Some(hub)
    } else {
        None
    };
    let outcome = (|| {
        for (name, records) in spec.inputs {
            exec.load_input(&name, records)?;
        }
        for (uid, behavior) in spec.faults {
            exec.inject_fault(uid, behavior);
        }
        exec.run_script(&spec.script)
    })();
    let snapshot = hub.map(|h| h.snapshot().sim_only());
    (outcome, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbft_dataflow::Value;

    const SCRIPT: &str = "
        a = LOAD 'in' AS (k, v);
        g = GROUP a BY k;
        c = FOREACH g GENERATE group, COUNT(a) AS n;
        STORE c INTO 'out';
    ";

    fn rows(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(vec![Value::Int(i % 5), Value::Int(i)]))
            .collect()
    }

    #[test]
    fn runs_jobs_from_multiple_tenants() {
        let server = JobServer::start(ServerConfig {
            slots: 3,
            ..ServerConfig::default()
        });
        let handles: Vec<JobHandle> = (0..9)
            .map(|i| {
                let tenant = ["a", "b", "c"][i % 3];
                server
                    .submit(
                        JobSpec::new(tenant, SCRIPT)
                            .input("in", rows(40))
                            .seed(i as u64),
                    )
                    .expect_admitted()
            })
            .collect();
        for h in handles {
            let r = h.wait();
            assert!(r.verified(), "job {} unverified", r.id);
            assert!(r.total_us >= r.exec_us);
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_jobs_then_rejects() {
        let server = JobServer::start(ServerConfig {
            slots: 1,
            ..ServerConfig::default()
        });
        let handles: Vec<JobHandle> = (0..4)
            .map(|i| {
                server
                    .submit(JobSpec::new("t", SCRIPT).input("in", rows(40)).seed(i))
                    .expect_admitted()
            })
            .collect();
        let results: Vec<JobResult> = handles.into_iter().map(JobHandle::wait).collect();
        server.shutdown();
        assert!(results.iter().all(JobResult::verified));
    }

    #[test]
    fn rejected_submission_reports_queue_full() {
        // One slot, depth 1: burst submissions must hit explicit
        // backpressure (the slot can drain at most a few jobs in the
        // microseconds the burst takes).
        let server = JobServer::start(ServerConfig {
            slots: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        });
        let mut rejected = 0;
        let mut handles = Vec::new();
        for i in 0..32 {
            match server.submit(JobSpec::new("t", SCRIPT).input("in", rows(400)).seed(i)) {
                SubmitOutcome::Admitted(h) => handles.push(h),
                SubmitOutcome::Rejected(RejectReason::QueueFull { depth }) => {
                    assert_eq!(depth, 1);
                    rejected += 1;
                }
                SubmitOutcome::Rejected(other) => panic!("unexpected: {other}"),
            }
        }
        assert!(
            rejected > 0,
            "32-deep burst into a depth-1 queue must reject"
        );
        for h in handles {
            assert!(h.wait().verified());
        }
        server.shutdown();
    }

    #[test]
    fn cancel_pulls_queued_job_and_resolves_waiters() {
        // One slot kept busy by a large job: the second submission sits in
        // the queue where cancel() can still reach it.
        let server = JobServer::start(ServerConfig {
            slots: 1,
            ..ServerConfig::default()
        });
        let busy = server
            .submit(JobSpec::new("t", SCRIPT).input("in", rows(4000)).seed(1))
            .expect_admitted();
        let queued = server
            .submit(JobSpec::new("t", SCRIPT).input("in", rows(40)).seed(2))
            .expect_admitted();
        assert!(queued.cancel(), "still-queued job must be cancellable");
        assert!(!queued.cancel(), "second cancel finds nothing to remove");
        let r = queued.wait();
        assert!(matches!(r.outcome, Err(JobError::Cancelled)));
        assert!(!r.verified());
        assert_eq!(r.exec_us, 0, "a cancelled job never executed");
        assert!(busy.wait().verified());
        server.shutdown();
    }

    #[test]
    fn cancel_misses_job_already_dispatched() {
        let server = JobServer::start(ServerConfig {
            slots: 1,
            ..ServerConfig::default()
        });
        let h = server
            .submit(JobSpec::new("t", SCRIPT).input("in", rows(40)).seed(9))
            .expect_admitted();
        // Let the idle slot pick the job up; cancel then races dispatch,
        // and whichever side wins must be reflected consistently in the
        // result the waiter sees.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let cancelled = h.cancel();
        let r = h.wait();
        if cancelled {
            assert!(matches!(r.outcome, Err(JobError::Cancelled)));
        } else {
            assert!(r.verified(), "uncancelled job runs to completion");
        }
        server.shutdown();
    }

    #[test]
    fn per_tenant_quota_rejects_excess_inflight_jobs() {
        let server = JobServer::start(ServerConfig {
            slots: 1,
            max_inflight: vec![("metered".into(), 1)],
            ..ServerConfig::default()
        });
        let first = server
            .submit(
                JobSpec::new("metered", SCRIPT)
                    .input("in", rows(4000))
                    .seed(1),
            )
            .expect_admitted();
        match server.submit(
            JobSpec::new("metered", SCRIPT)
                .input("in", rows(40))
                .seed(2),
        ) {
            SubmitOutcome::Rejected(RejectReason::QuotaExceeded { tenant, limit }) => {
                assert_eq!(tenant, "metered");
                assert_eq!(limit, 1);
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // Unmetered tenants are unaffected by someone else's quota.
        let free = server
            .submit(JobSpec::new("other", SCRIPT).input("in", rows(40)).seed(3))
            .expect_admitted();
        assert!(first.wait().verified());
        assert!(free.wait().verified());
        // The completed job released its slot: the tenant may submit again.
        let again = server
            .submit(
                JobSpec::new("metered", SCRIPT)
                    .input("in", rows(40))
                    .seed(4),
            )
            .expect_admitted();
        assert!(again.wait().verified());
        server.shutdown();
    }

    #[test]
    fn faulty_job_escalates_inside_the_server() {
        let server = JobServer::start(ServerConfig::default());
        let spec = JobSpec::new("chaos", SCRIPT)
            .input("in", rows(60))
            .seed(3)
            .fault(0, Behavior::Commission { probability: 1.0 });
        let r = server.submit(spec).expect_admitted().wait();
        let outcome = r.outcome.expect("ran");
        assert!(outcome.verified(), "escalation recovers inside the server");
        assert!(outcome.deviant_replicas().contains(&0));
        server.shutdown();
    }
}
