//! Anomaly detection and forensic bundles for the always-on flight
//! recorder.
//!
//! The recorder itself ([`crate::trace::FlightRecorder`]) lives in
//! `cbft-trace`; this module is the policy layer that sits above it in
//! the CLI and the `cbftd` server: it inspects a finished run for the
//! anomaly signals the system already computes — digest mismatches and
//! divergence localization, escalation, spot-check mismatches, withheld
//! outputs, lost workers, suspicion-band crossings, admission rejection
//! bursts — and, when any fire, writes a self-contained **forensic
//! bundle** under `--flight-dir`.
//!
//! Bundle layout (one directory per anomalous run):
//!
//! ```text
//! <flight-dir>/<bundle-name>/
//!   manifest.json      anomalies, seed, run context, repro command
//!   repro.sh           one-shot re-execution against the bundled copies
//!   script.pig         the exact script source
//!   input_<name>.csv   the exact input data
//!   sim/events.log     canonical flight-recorder events (deterministic)
//!   sim/metrics.prom   sim-domain metrics, Prometheus exposition
//!   sim/metrics.json   the same snapshot as JSON
//!   sim/health.txt     the fault-forensics health report
//! ```
//!
//! Everything under `sim/`, plus the script and input copies, is a pure
//! function of the simulation and therefore byte-identical across
//! `--threads` / `--compute-threads` settings; host-dependent fields
//! (thread counts, the repro command) live only in `manifest.json` and
//! `repro.sh`.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::core::{Behavior, ParallelOutcome, Replication, ScriptOutcome, VerifyMode};
use crate::metrics::{json_snapshot, names, prometheus_text, HealthReport, SampleValue, Snapshot};
use crate::trace::{canonical_dump, TraceEvent};

/// The anomaly classes the detector recognizes. Names are stable: they
/// appear in manifests, metrics labels and test assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// A replica's digests contradicted an established quorum.
    DigestMismatch,
    /// A replica wedged before completing every job.
    ReplicaOmission,
    /// A digest conflict at a key that never reached a quorum.
    DigestConflict,
    /// Chunk/record-level divergence localization fired.
    Divergence,
    /// The run escalated past its first verification round.
    Escalation,
    /// A trusted spot-check contradicted a recorded digest.
    SpotCheckMismatch,
    /// The run finished without publishing a verified output.
    OutputWithheld,
    /// A server slot worker died mid-job.
    WorkerLost,
    /// A node's suspicion level crossed into the Med band or above.
    SuspicionCrossing,
    /// A sustained burst of `QueueFull`/`QuotaExceeded` rejections.
    RejectionBurst,
}

impl AnomalyKind {
    /// Stable snake_case name (manifest / metrics label / assertions).
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::DigestMismatch => "digest_mismatch",
            AnomalyKind::ReplicaOmission => "replica_omission",
            AnomalyKind::DigestConflict => "digest_conflict",
            AnomalyKind::Divergence => "divergence",
            AnomalyKind::Escalation => "escalation",
            AnomalyKind::SpotCheckMismatch => "spot_check_mismatch",
            AnomalyKind::OutputWithheld => "output_withheld",
            AnomalyKind::WorkerLost => "worker_lost",
            AnomalyKind::SuspicionCrossing => "suspicion_crossing",
            AnomalyKind::RejectionBurst => "rejection_burst",
        }
    }
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected anomaly: a class plus a human-readable detail line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Anomaly {
    /// The anomaly class.
    pub kind: AnomalyKind,
    /// What exactly fired, e.g. `deviant replicas {0}`.
    pub detail: String,
}

impl Anomaly {
    fn new(kind: AnomalyKind, detail: impl Into<String>) -> Self {
        Anomaly {
            kind,
            detail: detail.into(),
        }
    }
}

/// Inspects a `--threads`-path outcome (plus the sim-domain metrics
/// snapshot, when metrics ran) for anomaly signals. Deterministic: every
/// input is itself identical across thread counts.
pub fn detect_parallel_anomalies(
    outcome: &ParallelOutcome,
    snapshot: Option<&Snapshot>,
) -> Vec<Anomaly> {
    let mut out = Vec::new();
    if !outcome.deviant_replicas().is_empty() {
        out.push(Anomaly::new(
            AnomalyKind::DigestMismatch,
            format!("deviant replicas {:?}", outcome.deviant_replicas()),
        ));
    }
    if !outcome.omitted_replicas().is_empty() {
        out.push(Anomaly::new(
            AnomalyKind::ReplicaOmission,
            format!("omitted replicas {:?}", outcome.omitted_replicas()),
        ));
    }
    if !outcome.conflict_replicas().is_empty() {
        out.push(Anomaly::new(
            AnomalyKind::DigestConflict,
            format!("conflict replicas {:?}", outcome.conflict_replicas()),
        ));
    }
    if outcome.replicas_per_round().len() > 1 || outcome.reexec().escalated {
        out.push(Anomaly::new(
            AnomalyKind::Escalation,
            format!("replicas per round {:?}", outcome.replicas_per_round()),
        ));
    }
    if outcome.reexec().mismatched > 0 {
        out.push(Anomaly::new(
            AnomalyKind::SpotCheckMismatch,
            format!(
                "{} of {} re-executed spot checks mismatched",
                outcome.reexec().mismatched,
                outcome.reexec().reexecuted
            ),
        ));
    }
    if !outcome.verified() {
        out.push(Anomaly::new(
            AnomalyKind::OutputWithheld,
            format!(
                "run not verified under {} mode",
                outcome.verify_mode().name()
            ),
        ));
    }
    if let Some(snap) = snapshot {
        out.extend(snapshot_anomalies(snap));
    }
    out
}

/// Inspects a sequential-pipeline outcome for the same signals.
pub fn detect_sequential_anomalies(outcome: &ScriptOutcome) -> Vec<Anomaly> {
    let mut out = Vec::new();
    if outcome.deviant_replica_runs() > 0 {
        out.push(Anomaly::new(
            AnomalyKind::DigestMismatch,
            format!("{} deviant replica runs", outcome.deviant_replica_runs()),
        ));
    }
    if outcome.omitted_replica_runs() > 0 {
        out.push(Anomaly::new(
            AnomalyKind::ReplicaOmission,
            format!("{} omitted replica runs", outcome.omitted_replica_runs()),
        ));
    }
    if outcome.attempts() > 1 {
        out.push(Anomaly::new(
            AnomalyKind::Escalation,
            format!("{} attempts", outcome.attempts()),
        ));
    }
    if !outcome.verified() {
        out.push(Anomaly::new(
            AnomalyKind::OutputWithheld,
            "run not verified".to_owned(),
        ));
    }
    out
}

/// Anomalies visible only in the metrics snapshot: divergence
/// localization gauges and suspicion-band crossings. Sim-domain gauges,
/// so detection is thread-count independent.
fn snapshot_anomalies(snap: &Snapshot) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let mut diverged: Vec<String> = Vec::new();
    let mut crossed: Vec<String> = Vec::new();
    for s in &snap.samples {
        match s.name {
            n if n == names::DIVERGENCE_FIRST_RECORD => {
                if let Some((_, key)) = s.labels.iter().find(|(k, _)| *k == "key") {
                    diverged.push(key.clone());
                }
            }
            n if n == names::SUSPICION_BAND => {
                // Band rank 2 = Med: the hybrid tier's escalation line.
                if matches!(s.value, SampleValue::Gauge(v) if v >= 2) {
                    let node = s
                        .labels
                        .iter()
                        .find(|(k, _)| *k == "node")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default();
                    crossed.push(node);
                }
            }
            _ => {}
        }
    }
    diverged.sort();
    crossed.sort();
    if !diverged.is_empty() {
        out.push(Anomaly::new(
            AnomalyKind::Divergence,
            format!("divergence localized at keys [{}]", diverged.join(", ")),
        ));
    }
    if !crossed.is_empty() {
        out.push(Anomaly::new(
            AnomalyKind::SuspicionCrossing,
            format!("suspicion band >= med on nodes [{}]", crossed.join(", ")),
        ));
    }
    out
}

/// Detects sustained admission-rejection bursts on the server submit
/// path: `threshold` consecutive `QueueFull`/`QuotaExceeded` rejections
/// trip the anomaly; any acceptance resets the streak.
#[derive(Debug)]
pub struct RejectionBurstDetector {
    threshold: u64,
    streak: u64,
    bursts: u64,
}

impl RejectionBurstDetector {
    /// A detector tripping after `threshold` consecutive rejections.
    pub fn new(threshold: u64) -> Self {
        RejectionBurstDetector {
            threshold: threshold.max(1),
            streak: 0,
            bursts: 0,
        }
    }

    /// Records one backpressure rejection; returns an anomaly the moment
    /// a streak reaches the threshold (once per burst).
    pub fn rejected(&mut self) -> Option<Anomaly> {
        self.streak += 1;
        if self.streak == self.threshold {
            self.bursts += 1;
            return Some(Anomaly::new(
                AnomalyKind::RejectionBurst,
                format!("{} consecutive admission rejections", self.streak),
            ));
        }
        None
    }

    /// Records a successful admission, ending any streak.
    pub fn admitted(&mut self) {
        self.streak = 0;
    }

    /// Bursts tripped so far.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }
}

/// The inputs to one forensic bundle, gathered by the CLI or server
/// after an anomalous run.
pub struct BundleSpec<'a> {
    /// Detected anomalies (non-empty).
    pub anomalies: &'a [Anomaly],
    /// The exact script source.
    pub script: &'a str,
    /// `(name, raw file contents)` for every input.
    pub inputs: &'a [(String, String)],
    /// The resolved simulation seed.
    pub seed: u64,
    /// Flight-recorder events drained after the run.
    pub events: &'a [TraceEvent],
    /// The run's metrics snapshot, if metrics ran. Only its sim-domain
    /// slice is written (the wall slice is host noise).
    pub snapshot: Option<&'a Snapshot>,
    /// The one-shot repro command, with paths as the user typed them.
    pub repro: String,
    /// Host-side context for the manifest: `(key, value)` pairs such as
    /// threads, verify mode, tenant or job id.
    pub context: Vec<(String, String)>,
}

/// Writes one forensic bundle directory named `name` under `flight_dir`,
/// creating parents as needed. Returns the bundle path.
///
/// # Errors
///
/// Any IO error, wrapped with the offending path.
pub fn write_bundle(
    flight_dir: &Path,
    name: &str,
    spec: &BundleSpec<'_>,
) -> Result<PathBuf, Box<dyn Error>> {
    let dir = flight_dir.join(name);
    let sim = dir.join("sim");
    std::fs::create_dir_all(&sim)
        .map_err(|e| format!("cannot create flight bundle dir '{}': {e}", sim.display()))?;

    write_file(&dir.join("script.pig"), spec.script)?;
    for (input_name, contents) in spec.inputs {
        write_file(&dir.join(format!("input_{input_name}.csv")), contents)?;
    }
    write_file(&sim.join("events.log"), &canonical_dump(spec.events))?;
    if let Some(snap) = spec.snapshot {
        let sim_snap = snap.sim_only();
        write_file(&sim.join("metrics.prom"), &prometheus_text(&sim_snap))?;
        write_file(&sim.join("metrics.json"), &json_snapshot(&sim_snap))?;
        write_file(
            &sim.join("health.txt"),
            &HealthReport::from_snapshot(&sim_snap).render(),
        )?;
    }
    write_file(&dir.join("repro.sh"), &render_repro_sh(spec))?;
    write_file(&dir.join("manifest.json"), &render_manifest(name, spec))?;
    Ok(dir)
}

/// `repro.sh`: re-executes against the bundled copies, so the bundle
/// reproduces the verdict even after the original files move.
fn render_repro_sh(spec: &BundleSpec<'_>) -> String {
    let mut cmd = vec!["cbft".to_owned(), "script.pig".to_owned()];
    for (name, _) in spec.inputs {
        cmd.push("--input".to_owned());
        cmd.push(format!("{name}=input_{name}.csv"));
    }
    cmd.extend(repro_flags_from(&spec.repro));
    format!(
        "#!/bin/sh\n\
         # One-shot repro of the anomalous run, against the bundled\n\
         # script/input copies. The original invocation is recorded in\n\
         # manifest.json.\n\
         cd \"$(dirname \"$0\")\"\n\
         exec {}\n",
        cmd.join(" ")
    )
}

/// Extracts the flag tail (everything after script and `--input` pairs)
/// from a rendered repro command, so `repro.sh` reuses the exact flags
/// while substituting the bundled file copies.
fn repro_flags_from(repro: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = repro.split_whitespace().skip(2); // "cbft <script>"
    while let Some(tok) = it.next() {
        if tok == "--input" {
            let _ = it.next();
            continue;
        }
        out.push(tok.to_owned());
    }
    out
}

fn render_manifest(name: &str, spec: &BundleSpec<'_>) -> String {
    use std::fmt::Write as _;

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bundle\": \"{}\",", esc(name));
    let _ = writeln!(out, "  \"seed\": {},", spec.seed);
    out.push_str("  \"anomalies\": [\n");
    for (i, a) in spec.anomalies.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kind\": \"{}\", \"detail\": \"{}\"}}",
            a.kind.name(),
            esc(&a.detail)
        );
        out.push_str(if i + 1 < spec.anomalies.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"context\": {\n");
    for (i, (k, v)) in spec.context.iter().enumerate() {
        let _ = write!(out, "    \"{}\": \"{}\"", esc(k), esc(v));
        out.push_str(if i + 1 < spec.context.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  },\n");
    let inputs: Vec<String> = spec
        .inputs
        .iter()
        .map(|(n, _)| format!("\"{}\"", esc(n)))
        .collect();
    let _ = writeln!(out, "  \"inputs\": [{}],", inputs.join(", "));
    let _ = writeln!(out, "  \"repro\": \"{}\"", esc(&spec.repro));
    out.push_str("}\n");
    out
}

fn esc(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes `contents` to `path` with a path-context error.
fn write_file(path: &Path, contents: &str) -> Result<(), Box<dyn Error>> {
    std::fs::write(path, contents)
        .map_err(|e| format!("cannot write flight bundle file '{}': {e}", path.display()).into())
}

/// Writes a CLI output file (`--metrics`, `--metrics-json`, `--trace`),
/// creating missing parent directories first. Errors carry the path and
/// the flag that asked for it.
pub fn write_output(flag: &str, path: &str, contents: &str) -> Result<(), Box<dyn Error>> {
    let p = Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!(
                    "cannot create {flag} parent directory '{}': {e}",
                    parent.display()
                )
            })?;
        }
    }
    std::fs::write(p, contents)
        .map_err(|e| format!("cannot write {flag} output '{}': {e}", p.display()).into())
}

/// Renders a fault spec the way `--fault` parses it.
pub fn render_fault(node: usize, behavior: Behavior) -> String {
    match behavior {
        Behavior::Commission { probability } if probability >= 1.0 => {
            format!("{node}:commission")
        }
        Behavior::Commission { probability } => format!("{node}:commission:{probability}"),
        Behavior::Omission { probability } if probability >= 1.0 => format!("{node}:omission"),
        Behavior::Omission { probability } => format!("{node}:omission:{probability}"),
        Behavior::Crashed => format!("{node}:crash"),
        Behavior::Honest => format!("{node}:honest"),
    }
}

fn render_replication(r: Replication) -> &'static str {
    match r {
        Replication::Optimistic => "optimistic",
        Replication::Quorum => "quorum",
        Replication::Full => "full",
        Replication::Exact(_) => "",
    }
}

/// Builds the exact one-shot `cbft` command reproducing a run: script
/// and input paths as the user typed them, plus every determinism-
/// relevant flag (seed, fault plan, verification tier, thread counts).
pub fn repro_command(opts: &crate::cli::CliOptions) -> String {
    let mut cmd = vec!["cbft".to_owned(), opts.script.clone()];
    for (name, path) in &opts.inputs {
        cmd.push("--input".to_owned());
        cmd.push(format!("{name}={path}"));
    }
    cmd.push("--seed".to_owned());
    cmd.push(opts.seed.to_string());
    cmd.push("--f".to_owned());
    cmd.push(opts.f.to_string());
    match opts.replication {
        Replication::Exact(n) => {
            cmd.push("--replication".to_owned());
            cmd.push(n.to_string());
        }
        r => {
            cmd.push("--replication".to_owned());
            cmd.push(render_replication(r).to_owned());
        }
    }
    cmd.push("--nodes".to_owned());
    cmd.push(opts.nodes.to_string());
    cmd.push("--slots".to_owned());
    cmd.push(opts.slots.to_string());
    cmd.push("--points".to_owned());
    cmd.push(opts.points.to_string());
    if opts.granularity != usize::MAX {
        cmd.push("--granularity".to_owned());
        cmd.push(opts.granularity.to_string());
    }
    for &(node, behavior) in &opts.faults {
        cmd.push("--fault".to_owned());
        cmd.push(render_fault(node, behavior));
    }
    if opts.combiners {
        cmd.push("--combiners".to_owned());
    }
    if opts.optimize {
        cmd.push("--optimize".to_owned());
    }
    if let Some(threads) = opts.threads {
        cmd.push("--threads".to_owned());
        cmd.push(threads.to_string());
    }
    if let Some(n) = opts.compute_threads {
        cmd.push("--compute-threads".to_owned());
        cmd.push(n.to_string());
    }
    if opts.verify_mode != VerifyMode::Replicate {
        cmd.push("--verify-mode".to_owned());
        cmd.push(opts.verify_mode.name().to_owned());
    }
    if let Some(rate) = opts.sample_rate {
        cmd.push("--sample-rate".to_owned());
        cmd.push(rate.to_string());
    }
    cmd.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_burst_trips_once_per_streak() {
        let mut det = RejectionBurstDetector::new(3);
        assert!(det.rejected().is_none());
        assert!(det.rejected().is_none());
        let anomaly = det.rejected().expect("third consecutive rejection trips");
        assert_eq!(anomaly.kind, AnomalyKind::RejectionBurst);
        assert!(det.rejected().is_none(), "same burst does not re-trip");
        det.admitted();
        assert!(det.rejected().is_none(), "streak reset by admission");
        assert_eq!(det.bursts(), 1);
    }

    #[test]
    fn fault_specs_round_trip_through_the_parser() {
        for (node, behavior) in [
            (0, Behavior::Commission { probability: 1.0 }),
            (3, Behavior::Commission { probability: 0.5 }),
            (2, Behavior::Omission { probability: 1.0 }),
            (7, Behavior::Crashed),
        ] {
            let spec = render_fault(node, behavior);
            let parsed = crate::cli::parse_fault(&spec).expect("rendered spec parses");
            assert_eq!(parsed, (node, behavior));
        }
    }

    #[test]
    fn repro_command_round_trips_through_parse_args() {
        let opts = crate::cli::parse_args(
            [
                "job.pig",
                "--input",
                "edges=/tmp/edges.csv",
                "--seed",
                "42",
                "--threads",
                "2",
                "--verify-mode",
                "hybrid",
                "--sample-rate",
                "0.5",
                "--fault",
                "0:commission",
                "--granularity",
                "8",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        )
        .unwrap();
        let cmd = repro_command(&opts);
        let reparsed =
            crate::cli::parse_args(cmd.split_whitespace().skip(1).map(|s| s.to_owned())).unwrap();
        assert_eq!(reparsed, opts, "repro command is an exact round trip");
    }

    #[test]
    fn manifest_and_repro_sh_render() {
        let anomalies = vec![Anomaly::new(AnomalyKind::DigestMismatch, "deviant {0}")];
        let spec = BundleSpec {
            anomalies: &anomalies,
            script: "a = LOAD 'x' AS (u);",
            inputs: &[("edges".to_owned(), "1,2\n".to_owned())],
            seed: 7,
            events: &[],
            snapshot: None,
            repro: "cbft job.pig --input edges=/tmp/e.csv --seed 7 --threads 2".to_owned(),
            context: vec![("threads".to_owned(), "2".to_owned())],
        };
        let manifest = render_manifest("bundle-seed7", &spec);
        assert!(manifest.contains("\"digest_mismatch\""));
        assert!(manifest.contains("\"seed\": 7"));
        let sh = render_repro_sh(&spec);
        assert!(sh.contains("--input edges=input_edges.csv"), "{sh}");
        assert!(sh.contains("--seed 7 --threads 2"), "{sh}");
        assert!(!sh.contains("/tmp/e.csv"), "bundled copy substituted");
    }
}
