//! Argument parsing and driver logic for the `cbftd` job-server daemon.
//!
//! Kept in the library (like [`crate::cli`]) so the parsing rules and the
//! whole submit→drain→report path are unit-testable without spawning a
//! process. No external argument-parsing dependency.
//!
//! `cbftd` reads a **stream of job submissions** — one per line, from a
//! file or stdin — admits them through the server's bounded weighted-fair
//! queue (retrying politely when the queue pushes back), waits for every
//! admitted job, and prints one result line per job plus a per-tenant
//! summary.
//!
//! Job line grammar (whitespace-separated; `#` starts a comment):
//!
//! ```text
//! TENANT SEED SCRIPT.pig [NAME=FILE ...]
//! ```

use std::error::Error;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::cli::{parse_record, UsageError};
use crate::core::{ExecutorConfig, Replication, VpPolicy};
use crate::metrics::{json_snapshot, prometheus_text, HealthReport, Metrics};
use crate::server::{JobServer, JobSpec, RejectReason, ServerConfig, SubmitOutcome};

/// Parsed command-line options for one `cbftd` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct DaemonOptions {
    /// Path of the jobs file; `None` reads submissions from stdin.
    pub jobs: Option<String>,
    /// Concurrent execution slots.
    pub slots: usize,
    /// Bounded admission-queue depth.
    pub queue_depth: usize,
    /// Threads in the compute pool shared by every job.
    pub compute_threads: usize,
    /// Fair-share weight for tenants without an explicit `--weight`.
    pub default_weight: u64,
    /// Per-tenant fair-share weights (`--weight TENANT=W`).
    pub weights: Vec<(String, u64)>,
    /// Per-tenant in-flight job quotas (`--max-inflight TENANT=N`).
    pub max_inflight: Vec<(String, usize)>,
    /// Replica worker threads per job.
    pub threads: usize,
    /// Fault bound `f` per job.
    pub f: usize,
    /// Initial replication degree per job.
    pub replication: Replication,
    /// Marker-chosen verification points per job.
    pub points: u32,
    /// Records per digest chunk.
    pub granularity: usize,
    /// Rows per columnar batch (`None` = engine default, `0` = row path).
    pub batch_size: Option<usize>,
    /// Nodes in each replica's isolated cluster.
    pub nodes: usize,
    /// Task slots per simulated node.
    pub slots_per_node: usize,
    /// Write a Prometheus text-exposition metrics dump here.
    pub metrics: Option<String>,
    /// Write a JSON metrics snapshot here.
    pub metrics_json: Option<String>,
    /// Append the health report (with its job-server section) to the
    /// run report.
    pub health_report: bool,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            jobs: None,
            slots: 2,
            queue_depth: 64,
            compute_threads: 1,
            default_weight: 1,
            weights: Vec::new(),
            max_inflight: Vec::new(),
            threads: 2,
            f: 1,
            replication: Replication::Optimistic,
            points: 2,
            granularity: usize::MAX,
            batch_size: None,
            nodes: 8,
            slots_per_node: 3,
            metrics: None,
            metrics_json: None,
            health_report: false,
        }
    }
}

/// The usage text for `cbftd --help`.
pub const DAEMON_USAGE: &str = "\
cbftd — multi-tenant ClusterBFT job server: admit a stream of jobs through a
bounded weighted-fair queue and run them concurrently with per-job verification

USAGE:
    cbftd [JOBS_FILE] [OPTIONS]        (no JOBS_FILE: read job lines from stdin)

JOB LINES (one submission per line; '#' starts a comment):
    TENANT SEED SCRIPT.pig [NAME=FILE ...]

OPTIONS:
    --slots N            concurrent execution slots        [default: 2]
    --queue-depth N      bounded admission queue depth     [default: 64]
    --compute-threads N  compute pool shared by all jobs;
                         0 = one thread per host core      [default: 1]
    --weight TENANT=W    fair-share weight for one tenant  [default: 1]
    --default-weight W   weight for unlisted tenants       [default: 1]
    --max-inflight TENANT=N  cap on a tenant's queued+executing jobs;
                         excess submissions are rejected with an explicit
                         quota error (cbftd retries them politely)
    --threads N          replica worker threads per job    [default: 2]
    --f N                fault bound f per job             [default: 1]
    --replication R      optimistic | quorum | full | an integer ≥ 1
                                                           [default: optimistic]
    --points N           marker-chosen verification points [default: 2]
    --granularity D      records per digest chunk (≥ 1)    [default: whole stream]
    --batch-size N       rows per columnar batch; 0 = row path
    --nodes N            nodes per replica cluster (≥ 1)   [default: 8]
    --node-slots N       task slots per node (≥ 1)         [default: 3]
    --metrics FILE       write Prometheus metrics (server series included)
    --metrics-json FILE  write the JSON metrics snapshot
    --health-report      append the health report (job-server section:
                         admitted/rejected counts, queue peak, per-tenant
                         latency quantiles)

Rejections are explicit backpressure: when the queue is full, cbftd waits
briefly and retries the submission, counting every rejection it absorbed.";

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("{flag}: '{s}' is not a valid number")))
}

fn positive(n: usize, flag: &str) -> Result<usize, UsageError> {
    if n == 0 {
        return Err(UsageError(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// Parses `cbftd` command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the offending argument; zero
/// values are rejected here, at parse time, for every flag whose zero
/// would only surface later as an engine panic.
pub fn parse_daemon_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<DaemonOptions, UsageError> {
    let mut opts = DaemonOptions::default();
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .ok_or_else(|| UsageError(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slots" => {
                opts.slots = positive(parse_num(&need(&mut it, "--slots")?, "--slots")?, "--slots")?
            }
            "--queue-depth" => {
                opts.queue_depth = positive(
                    parse_num(&need(&mut it, "--queue-depth")?, "--queue-depth")?,
                    "--queue-depth",
                )?
            }
            "--compute-threads" => {
                opts.compute_threads =
                    parse_num(&need(&mut it, "--compute-threads")?, "--compute-threads")?
            }
            "--default-weight" => {
                opts.default_weight = positive(
                    parse_num::<usize>(&need(&mut it, "--default-weight")?, "--default-weight")?,
                    "--default-weight",
                )? as u64
            }
            "--weight" => {
                let v = need(&mut it, "--weight")?;
                let (tenant, w) = v
                    .split_once('=')
                    .ok_or_else(|| UsageError(format!("--weight wants TENANT=W, got '{v}'")))?;
                let w = positive(parse_num::<usize>(w, "--weight")?, "--weight")? as u64;
                opts.weights.push((tenant.to_owned(), w));
            }
            "--max-inflight" => {
                let v = need(&mut it, "--max-inflight")?;
                let (tenant, n) = v.split_once('=').ok_or_else(|| {
                    UsageError(format!("--max-inflight wants TENANT=N, got '{v}'"))
                })?;
                // A zero quota would make the polite retry loop below spin
                // forever; reject it at parse time.
                let n = positive(parse_num(n, "--max-inflight")?, "--max-inflight")?;
                opts.max_inflight.push((tenant.to_owned(), n));
            }
            "--threads" => {
                opts.threads = positive(
                    parse_num(&need(&mut it, "--threads")?, "--threads")?,
                    "--threads",
                )?
            }
            "--f" => opts.f = parse_num(&need(&mut it, "--f")?, "--f")?,
            "--replication" => {
                let v = need(&mut it, "--replication")?;
                opts.replication = match v.as_str() {
                    "optimistic" => Replication::Optimistic,
                    "quorum" => Replication::Quorum,
                    "full" => Replication::Full,
                    n => Replication::Exact(positive(
                        parse_num(n, "--replication")?,
                        "--replication",
                    )?),
                };
            }
            "--points" => opts.points = parse_num(&need(&mut it, "--points")?, "--points")?,
            "--granularity" => {
                opts.granularity = positive(
                    parse_num(&need(&mut it, "--granularity")?, "--granularity")?,
                    "--granularity",
                )?
            }
            "--batch-size" => {
                opts.batch_size = Some(crate::cli::checked_batch_size(&need(
                    &mut it,
                    "--batch-size",
                )?)?)
            }
            "--nodes" => {
                opts.nodes = positive(parse_num(&need(&mut it, "--nodes")?, "--nodes")?, "--nodes")?
            }
            "--node-slots" => {
                opts.slots_per_node = positive(
                    parse_num(&need(&mut it, "--node-slots")?, "--node-slots")?,
                    "--node-slots",
                )?
            }
            "--metrics" => opts.metrics = Some(need(&mut it, "--metrics")?),
            "--metrics-json" => opts.metrics_json = Some(need(&mut it, "--metrics-json")?),
            "--health-report" => opts.health_report = true,
            "--help" | "-h" => return Err(UsageError(DAEMON_USAGE.to_owned())),
            other if !other.starts_with('-') && opts.jobs.is_none() => {
                opts.jobs = Some(other.to_owned());
            }
            other => return Err(UsageError(format!("unknown argument '{other}'"))),
        }
    }
    Ok(opts)
}

/// One parsed job submission line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobLine {
    /// The submitting tenant.
    pub tenant: String,
    /// The job's simulation seed.
    pub seed: u64,
    /// Path of the script file.
    pub script: String,
    /// Inputs as `name=path` pairs.
    pub inputs: Vec<(String, String)>,
}

/// Parses one `TENANT SEED SCRIPT [NAME=FILE ...]` submission line.
/// Returns `None` for blank lines and `#` comments.
///
/// # Errors
///
/// Returns a [`UsageError`] naming the malformed token.
pub fn parse_job_line(line: &str) -> Result<Option<JobLine>, UsageError> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let tenant = tokens.next().expect("non-empty line has a token");
    let seed = parse_num(
        tokens
            .next()
            .ok_or_else(|| UsageError(format!("job line '{line}' is missing a seed")))?,
        "job seed",
    )?;
    let script = tokens
        .next()
        .ok_or_else(|| UsageError(format!("job line '{line}' is missing a script path")))?;
    let mut inputs = Vec::new();
    for tok in tokens {
        let (name, path) = tok.split_once('=').ok_or_else(|| {
            UsageError(format!("job input '{tok}' wants NAME=FILE (line '{line}')"))
        })?;
        inputs.push((name.to_owned(), path.to_owned()));
    }
    Ok(Some(JobLine {
        tenant: tenant.to_owned(),
        seed,
        script: script.to_owned(),
        inputs,
    }))
}

/// Builds the per-job executor configuration from the daemon options.
fn job_exec(opts: &DaemonOptions, seed: u64) -> ExecutorConfig {
    let f = opts.f;
    ExecutorConfig {
        threads: opts.threads,
        compute_threads: 1, // the server's shared pool is used instead
        expected_failures: f,
        escalation: vec![opts.replication.replicas(f), 2 * f + 1, 3 * f + 1],
        vp_policy: VpPolicy::Marked(opts.points),
        digest_granularity: opts.granularity,
        batch_records: opts
            .batch_size
            .unwrap_or(ExecutorConfig::default().batch_records),
        nodes: opts.nodes,
        slots_per_node: opts.slots_per_node,
        master_seed: seed,
        ..ExecutorConfig::default()
    }
}

/// Loads one job line's script and inputs into a submit-ready [`JobSpec`].
///
/// # Errors
///
/// IO errors carry the path (and input name) that failed, so a typo in a
/// thousand-line jobs file is findable.
fn load_job(opts: &DaemonOptions, line: &JobLine) -> Result<JobSpec, Box<dyn Error>> {
    let script = std::fs::read_to_string(&line.script)
        .map_err(|e| format!("cannot read script '{}': {e}", line.script))?;
    let mut spec = JobSpec::new(&line.tenant, &script).exec(job_exec(opts, line.seed));
    for (name, path) in &line.inputs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read input '{name}' from '{path}': {e}"))?;
        let records = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(parse_record)
            .collect();
        spec = spec.input(name, records);
    }
    Ok(spec)
}

/// Executes a parsed `cbftd` invocation: reads the job stream, drives the
/// server, and returns the human-readable report.
///
/// # Errors
///
/// IO errors reading the jobs file / scripts / inputs (each named with
/// its path and jobs-file line number), and malformed job lines.
pub fn run_daemon(opts: &DaemonOptions) -> Result<String, Box<dyn Error>> {
    let text = match &opts.jobs {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read jobs file '{path}': {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)?;
            buf
        }
    };
    let mut lines = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        match parse_job_line(raw) {
            Ok(Some(line)) => lines.push((lineno + 1, line)),
            Ok(None) => {}
            Err(e) => return Err(format!("jobs line {}: {e}", lineno + 1).into()),
        }
    }

    let metrics = if opts.metrics.is_some() || opts.metrics_json.is_some() || opts.health_report {
        Metrics::new()
    } else {
        Metrics::disabled()
    };
    let server = JobServer::start(ServerConfig {
        slots: opts.slots,
        queue_depth: opts.queue_depth,
        compute_threads: opts.compute_threads,
        default_weight: opts.default_weight,
        weights: opts.weights.clone(),
        max_inflight: opts.max_inflight.clone(),
        metrics: metrics.clone(),
    });

    // Submit the whole stream. Queue-full responses are absorbed here
    // with a short pause and a retry — the daemon is the polite client;
    // `load_gen` exercises the impolite one.
    let started = Instant::now();
    let mut handles = Vec::with_capacity(lines.len());
    let mut backpressure = 0u64;
    let mut quota_waits = 0u64;
    for (lineno, line) in &lines {
        let spec = load_job(opts, line).map_err(|e| format!("jobs line {lineno}: {e}"))?;
        let handle = loop {
            match server.submit(spec.clone()) {
                SubmitOutcome::Admitted(h) => break h,
                SubmitOutcome::Rejected(RejectReason::QueueFull { .. }) => {
                    backpressure += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                // In-flight quota slots free up as the tenant's earlier
                // jobs finish, so these are also worth waiting out.
                SubmitOutcome::Rejected(RejectReason::QuotaExceeded { .. }) => {
                    quota_waits += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                SubmitOutcome::Rejected(r @ RejectReason::ShuttingDown) => {
                    return Err(format!("jobs line {lineno}: submission rejected: {r}").into())
                }
            }
        };
        handles.push(handle);
    }

    let mut results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    let elapsed = started.elapsed();
    server.shutdown();
    results.sort_by_key(|r| r.id);

    let mut out = String::new();
    let mut verified = 0usize;
    let mut failed = 0usize;
    let mut by_tenant: std::collections::BTreeMap<String, (usize, usize)> = Default::default();
    for r in &results {
        let entry = by_tenant.entry(r.tenant.clone()).or_default();
        entry.0 += 1;
        let status = match &r.outcome {
            Ok(o) if o.verified() => {
                verified += 1;
                entry.1 += 1;
                "VERIFIED".to_owned()
            }
            Ok(_) => "NOT VERIFIED".to_owned(),
            Err(e) => {
                failed += 1;
                format!("ERROR: {e}")
            }
        };
        let _ = writeln!(
            out,
            "job {} tenant={} {status} queue_ms={:.2} exec_ms={:.2} total_ms={:.2}",
            r.id,
            r.tenant,
            r.queue_us as f64 / 1e3,
            r.exec_us as f64 / 1e3,
            r.total_us as f64 / 1e3,
        );
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "\n{} jobs in {:.2}s ({:.1} jobs/s): {verified} verified, {failed} errored, \
         {backpressure} queue-full retries absorbed, {quota_waits} quota waits",
        results.len(),
        elapsed.as_secs_f64(),
        results.len() as f64 / secs,
    );
    for (tenant, (total, ok)) in &by_tenant {
        let _ = writeln!(out, "  tenant {tenant}: {ok}/{total} verified");
    }

    if metrics.enabled() {
        let snap = metrics.snapshot();
        if let Some(path) = &opts.metrics {
            std::fs::write(path, prometheus_text(&snap))
                .map_err(|e| format!("cannot write metrics '{path}': {e}"))?;
        }
        if let Some(path) = &opts.metrics_json {
            std::fs::write(path, json_snapshot(&snap))
                .map_err(|e| format!("cannot write metrics JSON '{path}': {e}"))?;
        }
        if opts.health_report {
            // Full snapshot: the server series are wall-domain.
            let report = HealthReport::from_snapshot(&snap);
            let _ = writeln!(out, "\n{}", report.render());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DaemonOptions, UsageError> {
        parse_daemon_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_a_full_invocation() {
        let opts = parse(&[
            "jobs.txt",
            "--slots",
            "4",
            "--queue-depth",
            "8",
            "--weight",
            "acme=3",
            "--weight",
            "beta=1",
            "--max-inflight",
            "acme=2",
            "--threads",
            "2",
            "--replication",
            "quorum",
            "--metrics",
            "m.prom",
            "--health-report",
        ])
        .unwrap();
        assert_eq!(opts.jobs.as_deref(), Some("jobs.txt"));
        assert_eq!(opts.slots, 4);
        assert_eq!(opts.queue_depth, 8);
        assert_eq!(
            opts.weights,
            vec![("acme".to_owned(), 3), ("beta".to_owned(), 1)]
        );
        assert_eq!(opts.max_inflight, vec![("acme".to_owned(), 2)]);
        assert_eq!(opts.replication, Replication::Quorum);
        assert_eq!(opts.metrics.as_deref(), Some("m.prom"));
        assert!(opts.health_report);
    }

    #[test]
    fn zero_valued_flags_are_rejected_at_parse_time() {
        for (args, needle) in [
            (&["--slots", "0"][..], "--slots must be at least 1"),
            (
                &["--queue-depth", "0"][..],
                "--queue-depth must be at least 1",
            ),
            (&["--threads", "0"][..], "--threads must be at least 1"),
            (
                &["--replication", "0"][..],
                "--replication must be at least 1",
            ),
            (
                &["--granularity", "0"][..],
                "--granularity must be at least 1",
            ),
            (&["--nodes", "0"][..], "--nodes must be at least 1"),
            (
                &["--node-slots", "0"][..],
                "--node-slots must be at least 1",
            ),
            (&["--weight", "a=0"][..], "--weight must be at least 1"),
            (
                &["--max-inflight", "a=0"][..],
                "--max-inflight must be at least 1",
            ),
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.0.contains(needle), "{args:?}: {err}");
        }
    }

    #[test]
    fn job_lines_parse_and_reject_malformed() {
        assert_eq!(parse_job_line("").unwrap(), None);
        assert_eq!(parse_job_line("   # just a comment").unwrap(), None);
        let line = parse_job_line("acme 7 s.pig edges=e.csv extra=x.csv # trailing")
            .unwrap()
            .unwrap();
        assert_eq!(line.tenant, "acme");
        assert_eq!(line.seed, 7);
        assert_eq!(line.script, "s.pig");
        assert_eq!(line.inputs.len(), 2);

        let err = parse_job_line("acme").unwrap_err();
        assert!(err.0.contains("missing a seed"), "{err}");
        let err = parse_job_line("acme seven s.pig").unwrap_err();
        assert!(err.0.contains("not a valid number"), "{err}");
        let err = parse_job_line("acme 7").unwrap_err();
        assert!(err.0.contains("missing a script path"), "{err}");
        let err = parse_job_line("acme 7 s.pig justname").unwrap_err();
        assert!(err.0.contains("wants NAME=FILE"), "{err}");
    }

    #[test]
    fn missing_jobs_file_and_script_are_reported_with_paths() {
        let opts = parse(&["definitely_missing_jobs.txt"]).unwrap();
        let err = run_daemon(&opts).unwrap_err();
        assert!(
            err.to_string()
                .contains("cannot read jobs file 'definitely_missing_jobs.txt'"),
            "{err}"
        );

        let dir = std::env::temp_dir().join(format!("cbftd_missing_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("jobs.txt");
        std::fs::write(&jobs, "acme 1 nonexistent_script.pig\n").unwrap();
        let opts = parse(&[jobs.to_str().unwrap()]).unwrap();
        let err = run_daemon(&opts).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("jobs line 1"), "{msg}");
        assert!(
            msg.contains("cannot read script 'nonexistent_script.pig'"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_daemon_run_from_files() {
        let dir = std::env::temp_dir().join(format!("cbftd_e2e_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let rows: Vec<String> = (0..40).map(|i| format!("{},{}", i % 4, i)).collect();
        std::fs::write(&data, rows.join("\n")).unwrap();
        let jobs = dir.join("jobs.txt");
        let mut body = String::from("# three tenants, two jobs each\n");
        for (i, tenant) in ["acme", "beta", "core", "acme", "beta", "core"]
            .iter()
            .enumerate()
        {
            let _ = writeln!(
                body,
                "{tenant} {} {} edges={}",
                i + 1,
                script.display(),
                data.display()
            );
        }
        std::fs::write(&jobs, body).unwrap();
        let prom = dir.join("m.prom");

        let opts = parse(&[
            jobs.to_str().unwrap(),
            "--slots",
            "3",
            "--weight",
            "acme=2",
            "--max-inflight",
            "acme=1",
            "--metrics",
            prom.to_str().unwrap(),
            "--health-report",
        ])
        .unwrap();
        let report = run_daemon(&opts).unwrap();
        for id in 0..6 {
            assert!(
                report.contains(&format!("job {id} ")),
                "job {id} missing: {report}"
            );
        }
        assert_eq!(report.matches("VERIFIED").count(), 6, "{report}");
        assert!(report.contains("6 jobs in"), "{report}");
        assert!(report.contains("quota waits"), "{report}");
        assert!(report.contains("tenant acme: 2/2 verified"), "{report}");
        assert!(report.contains("job server:"), "{report}");
        assert!(report.contains("admitted=6"), "{report}");

        let text = std::fs::read_to_string(&prom).unwrap();
        crate::metrics::validate_prometheus_text(&text)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
        assert!(text.contains("cbft_server_jobs_admitted_total"), "{text}");
        assert!(text.contains("cbft_server_job_latency_us"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
