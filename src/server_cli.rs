//! Argument parsing and driver logic for the `cbftd` job-server daemon.
//!
//! Kept in the library (like [`crate::cli`]) so the parsing rules and the
//! whole submit→drain→report path are unit-testable without spawning a
//! process. No external argument-parsing dependency.
//!
//! `cbftd` reads a **stream of job submissions** — one per line, from a
//! file or stdin — admits them through the server's bounded weighted-fair
//! queue (retrying politely when the queue pushes back), waits for every
//! admitted job, and prints one result line per job plus a per-tenant
//! summary.
//!
//! Job line grammar (whitespace-separated; `#` starts a comment):
//!
//! ```text
//! TENANT SEED SCRIPT.pig [NAME=FILE ...] [fault:N:SPEC ...]
//! ```
//!
//! `fault:` tokens inject per-job replica faults (same specs as the
//! single-run CLI's `--fault`), so chaos jobs ride through the server
//! like healthy ones — and trip the flight recorder's anomaly detector.

use std::error::Error;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::cli::{parse_record, CliOptions, UsageError};
use crate::core::{ExecutorConfig, Replication, VpPolicy};
use crate::flight::{self, Anomaly, AnomalyKind, BundleSpec, RejectionBurstDetector};
use crate::mapreduce::data_plane;
use crate::metrics::{
    json_snapshot, names as metric_names, prometheus_text, Domain, HealthReport, LabelValue,
    Metrics,
};
use crate::server::{
    JobError, JobResult, JobServer, JobSpec, RejectReason, ServerConfig, SubmitOutcome,
};
use crate::trace::{
    chrome_trace_json, ArgValue, FanoutSink, FlightRecorder, MemorySink, TraceEvent, TraceSink,
    TraceSummary, Tracer,
};

/// Parsed command-line options for one `cbftd` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct DaemonOptions {
    /// Path of the jobs file; `None` reads submissions from stdin.
    pub jobs: Option<String>,
    /// Concurrent execution slots.
    pub slots: usize,
    /// Bounded admission-queue depth.
    pub queue_depth: usize,
    /// Threads in the compute pool shared by every job.
    pub compute_threads: usize,
    /// Fair-share weight for tenants without an explicit `--weight`.
    pub default_weight: u64,
    /// Per-tenant fair-share weights (`--weight TENANT=W`).
    pub weights: Vec<(String, u64)>,
    /// Per-tenant in-flight job quotas (`--max-inflight TENANT=N`).
    pub max_inflight: Vec<(String, usize)>,
    /// Replica worker threads per job.
    pub threads: usize,
    /// Fault bound `f` per job.
    pub f: usize,
    /// Initial replication degree per job.
    pub replication: Replication,
    /// Marker-chosen verification points per job.
    pub points: u32,
    /// Records per digest chunk.
    pub granularity: usize,
    /// Rows per columnar batch (`None` = engine default, `0` = row path).
    pub batch_size: Option<usize>,
    /// Nodes in each replica's isolated cluster.
    pub nodes: usize,
    /// Task slots per simulated node.
    pub slots_per_node: usize,
    /// Write a Prometheus text-exposition metrics dump here.
    pub metrics: Option<String>,
    /// Write a JSON metrics snapshot here.
    pub metrics_json: Option<String>,
    /// Append the health report (with its job-server section) to the
    /// run report.
    pub health_report: bool,
    /// Write a Chrome-trace-format JSON trace of every job here. Jobs
    /// record through per-job scoped sinks, so co-tenant tracks never
    /// interleave.
    pub trace: Option<String>,
    /// Print the aggregated trace summary after the per-tenant report.
    pub trace_summary: bool,
    /// Write per-job forensic bundles here when anomalies fire.
    pub flight_dir: Option<String>,
    /// Append wall-clock metrics snapshots to this JSONL series while
    /// the server runs (one JSON object per line, `t_us` since start).
    pub snapshot_series: Option<String>,
    /// Seconds between snapshot-series appends.
    pub snapshot_interval: u64,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            jobs: None,
            slots: 2,
            queue_depth: 64,
            compute_threads: 1,
            default_weight: 1,
            weights: Vec::new(),
            max_inflight: Vec::new(),
            threads: 2,
            f: 1,
            replication: Replication::Optimistic,
            points: 2,
            granularity: usize::MAX,
            batch_size: None,
            nodes: 8,
            slots_per_node: 3,
            metrics: None,
            metrics_json: None,
            health_report: false,
            trace: None,
            trace_summary: false,
            flight_dir: None,
            snapshot_series: None,
            snapshot_interval: 1,
        }
    }
}

/// The usage text for `cbftd --help`.
pub const DAEMON_USAGE: &str = "\
cbftd — multi-tenant ClusterBFT job server: admit a stream of jobs through a
bounded weighted-fair queue and run them concurrently with per-job verification

USAGE:
    cbftd [JOBS_FILE] [OPTIONS]        (no JOBS_FILE: read job lines from stdin)

JOB LINES (one submission per line; '#' starts a comment):
    TENANT SEED SCRIPT.pig [NAME=FILE ...] [fault:N:SPEC ...]
    fault: tokens inject per-job replica faults (--fault specs, e.g.
    fault:0:commission), so chaos jobs ride the queue like healthy ones

OPTIONS:
    --slots N            concurrent execution slots        [default: 2]
    --queue-depth N      bounded admission queue depth     [default: 64]
    --compute-threads N  compute pool shared by all jobs;
                         0 = one thread per host core      [default: 1]
    --weight TENANT=W    fair-share weight for one tenant  [default: 1]
    --default-weight W   weight for unlisted tenants       [default: 1]
    --max-inflight TENANT=N  cap on a tenant's queued+executing jobs;
                         excess submissions are rejected with an explicit
                         quota error (cbftd retries them politely)
    --threads N          replica worker threads per job    [default: 2]
    --f N                fault bound f per job             [default: 1]
    --replication R      optimistic | quorum | full | an integer ≥ 1
                                                           [default: optimistic]
    --points N           marker-chosen verification points [default: 2]
    --granularity D      records per digest chunk (≥ 1)    [default: whole stream]
    --batch-size N       rows per columnar batch; 0 = row path
    --nodes N            nodes per replica cluster (≥ 1)   [default: 8]
    --node-slots N       task slots per node (≥ 1)         [default: 3]
    --metrics FILE       write Prometheus metrics (server series included)
    --metrics-json FILE  write the JSON metrics snapshot
    --health-report      append the health report (job-server section:
                         admitted/rejected counts, queue peak, per-tenant
                         latency quantiles)
    --trace FILE         write a Chrome-trace JSON of every job (per-job
                         scoped tracks; load in Perfetto)
    --trace-summary      append the aggregated trace summary
    --flight-dir DIR     write per-job forensic bundles under DIR when a
                         job trips the anomaly detector (mismatch,
                         escalation, withheld output, lost worker, ...)
    --snapshot-series FILE  append wall-clock metrics snapshots to FILE as
                         JSONL while the server runs (plus one final line)
    --snapshot-interval SECS  seconds between appends       [default: 1]

Rejections are explicit backpressure: when the queue is full, cbftd waits
briefly and retries the submission, counting every rejection it absorbed.
A sustained rejection streak is itself an anomaly (rejection_burst).";

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("{flag}: '{s}' is not a valid number")))
}

fn positive(n: usize, flag: &str) -> Result<usize, UsageError> {
    if n == 0 {
        return Err(UsageError(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// Parses `cbftd` command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the offending argument; zero
/// values are rejected here, at parse time, for every flag whose zero
/// would only surface later as an engine panic.
pub fn parse_daemon_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<DaemonOptions, UsageError> {
    let mut opts = DaemonOptions::default();
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .ok_or_else(|| UsageError(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slots" => {
                opts.slots = positive(parse_num(&need(&mut it, "--slots")?, "--slots")?, "--slots")?
            }
            "--queue-depth" => {
                opts.queue_depth = positive(
                    parse_num(&need(&mut it, "--queue-depth")?, "--queue-depth")?,
                    "--queue-depth",
                )?
            }
            "--compute-threads" => {
                opts.compute_threads =
                    parse_num(&need(&mut it, "--compute-threads")?, "--compute-threads")?
            }
            "--default-weight" => {
                opts.default_weight = positive(
                    parse_num::<usize>(&need(&mut it, "--default-weight")?, "--default-weight")?,
                    "--default-weight",
                )? as u64
            }
            "--weight" => {
                let v = need(&mut it, "--weight")?;
                let (tenant, w) = v
                    .split_once('=')
                    .ok_or_else(|| UsageError(format!("--weight wants TENANT=W, got '{v}'")))?;
                let w = positive(parse_num::<usize>(w, "--weight")?, "--weight")? as u64;
                opts.weights.push((tenant.to_owned(), w));
            }
            "--max-inflight" => {
                let v = need(&mut it, "--max-inflight")?;
                let (tenant, n) = v.split_once('=').ok_or_else(|| {
                    UsageError(format!("--max-inflight wants TENANT=N, got '{v}'"))
                })?;
                // A zero quota would make the polite retry loop below spin
                // forever; reject it at parse time.
                let n = positive(parse_num(n, "--max-inflight")?, "--max-inflight")?;
                opts.max_inflight.push((tenant.to_owned(), n));
            }
            "--threads" => {
                opts.threads = positive(
                    parse_num(&need(&mut it, "--threads")?, "--threads")?,
                    "--threads",
                )?
            }
            "--f" => opts.f = parse_num(&need(&mut it, "--f")?, "--f")?,
            "--replication" => {
                let v = need(&mut it, "--replication")?;
                opts.replication = match v.as_str() {
                    "optimistic" => Replication::Optimistic,
                    "quorum" => Replication::Quorum,
                    "full" => Replication::Full,
                    n => Replication::Exact(positive(
                        parse_num(n, "--replication")?,
                        "--replication",
                    )?),
                };
            }
            "--points" => opts.points = parse_num(&need(&mut it, "--points")?, "--points")?,
            "--granularity" => {
                opts.granularity = positive(
                    parse_num(&need(&mut it, "--granularity")?, "--granularity")?,
                    "--granularity",
                )?
            }
            "--batch-size" => {
                opts.batch_size = Some(crate::cli::checked_batch_size(&need(
                    &mut it,
                    "--batch-size",
                )?)?)
            }
            "--nodes" => {
                opts.nodes = positive(parse_num(&need(&mut it, "--nodes")?, "--nodes")?, "--nodes")?
            }
            "--node-slots" => {
                opts.slots_per_node = positive(
                    parse_num(&need(&mut it, "--node-slots")?, "--node-slots")?,
                    "--node-slots",
                )?
            }
            "--metrics" => opts.metrics = Some(need(&mut it, "--metrics")?),
            "--metrics-json" => opts.metrics_json = Some(need(&mut it, "--metrics-json")?),
            "--health-report" => opts.health_report = true,
            "--trace" => opts.trace = Some(need(&mut it, "--trace")?),
            "--trace-summary" => opts.trace_summary = true,
            "--flight-dir" => opts.flight_dir = Some(need(&mut it, "--flight-dir")?),
            "--snapshot-series" => opts.snapshot_series = Some(need(&mut it, "--snapshot-series")?),
            "--snapshot-interval" => {
                opts.snapshot_interval = positive(
                    parse_num(
                        &need(&mut it, "--snapshot-interval")?,
                        "--snapshot-interval",
                    )?,
                    "--snapshot-interval",
                )? as u64
            }
            "--help" | "-h" => return Err(UsageError(DAEMON_USAGE.to_owned())),
            other if !other.starts_with('-') && opts.jobs.is_none() => {
                opts.jobs = Some(other.to_owned());
            }
            other => return Err(UsageError(format!("unknown argument '{other}'"))),
        }
    }
    Ok(opts)
}

/// Raw `(name, contents)` input files exactly as read from disk, kept
/// so forensic bundles can ship byte-exact copies.
type RawInputs = Vec<(String, String)>;

/// Per-job context retained while a submission is in flight: the parsed
/// line, the script text, and the raw input files — everything a
/// forensic bundle needs beyond the drained ring events.
type JobContexts = std::collections::BTreeMap<u64, (JobLine, String, RawInputs)>;

/// One parsed job submission line.
#[derive(Clone, Debug, PartialEq)]
pub struct JobLine {
    /// The submitting tenant.
    pub tenant: String,
    /// The job's simulation seed.
    pub seed: u64,
    /// Path of the script file.
    pub script: String,
    /// Inputs as `name=path` pairs.
    pub inputs: Vec<(String, String)>,
    /// Per-job injected replica faults (`fault:N:SPEC` tokens).
    pub faults: Vec<(usize, crate::core::Behavior)>,
}

/// Parses one `TENANT SEED SCRIPT [NAME=FILE ...] [fault:N:SPEC ...]`
/// submission line. Returns `None` for blank lines and `#` comments.
///
/// # Errors
///
/// Returns a [`UsageError`] naming the malformed token.
pub fn parse_job_line(line: &str) -> Result<Option<JobLine>, UsageError> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let tenant = tokens.next().expect("non-empty line has a token");
    let seed = parse_num(
        tokens
            .next()
            .ok_or_else(|| UsageError(format!("job line '{line}' is missing a seed")))?,
        "job seed",
    )?;
    let script = tokens
        .next()
        .ok_or_else(|| UsageError(format!("job line '{line}' is missing a script path")))?;
    let mut inputs = Vec::new();
    let mut faults = Vec::new();
    for tok in tokens {
        if let Some(spec) = tok.strip_prefix("fault:") {
            faults.push(crate::cli::parse_fault(spec)?);
            continue;
        }
        let (name, path) = tok.split_once('=').ok_or_else(|| {
            UsageError(format!("job input '{tok}' wants NAME=FILE (line '{line}')"))
        })?;
        inputs.push((name.to_owned(), path.to_owned()));
    }
    Ok(Some(JobLine {
        tenant: tenant.to_owned(),
        seed,
        script: script.to_owned(),
        inputs,
        faults,
    }))
}

/// Builds the per-job executor configuration from the daemon options.
fn job_exec(opts: &DaemonOptions, seed: u64) -> ExecutorConfig {
    let f = opts.f;
    ExecutorConfig {
        threads: opts.threads,
        compute_threads: 1, // the server's shared pool is used instead
        expected_failures: f,
        escalation: vec![opts.replication.replicas(f), 2 * f + 1, 3 * f + 1],
        vp_policy: VpPolicy::Marked(opts.points),
        digest_granularity: opts.granularity,
        batch_records: opts
            .batch_size
            .unwrap_or(ExecutorConfig::default().batch_records),
        nodes: opts.nodes,
        slots_per_node: opts.slots_per_node,
        master_seed: seed,
        ..ExecutorConfig::default()
    }
}

/// Loads one job line's script and inputs into a submit-ready
/// [`JobSpec`], returning the raw input texts alongside (forensic
/// bundles ship exact copies of what was read).
///
/// # Errors
///
/// IO errors carry the path (and input name) that failed, so a typo in a
/// thousand-line jobs file is findable.
fn load_job(opts: &DaemonOptions, line: &JobLine) -> Result<(JobSpec, RawInputs), Box<dyn Error>> {
    let script = std::fs::read_to_string(&line.script)
        .map_err(|e| format!("cannot read script '{}': {e}", line.script))?;
    let mut spec = JobSpec::new(&line.tenant, &script).exec(job_exec(opts, line.seed));
    let mut raw = Vec::with_capacity(line.inputs.len());
    for (name, path) in &line.inputs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read input '{name}' from '{path}': {e}"))?;
        let records = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(parse_record)
            .collect();
        spec = spec.input(name, records);
        raw.push((name.clone(), text));
    }
    for &(uid, behavior) in &line.faults {
        spec = spec.fault(uid, behavior);
    }
    Ok((spec, raw))
}

/// The one-shot `cbft` invocation equivalent to one daemon job, built by
/// projecting the daemon options onto [`CliOptions`] so the repro
/// command renders through the same [`flight::repro_command`] path the
/// single-run CLI uses.
fn job_cli_options(opts: &DaemonOptions, line: &JobLine) -> CliOptions {
    CliOptions {
        script: line.script.clone(),
        inputs: line.inputs.clone(),
        nodes: opts.nodes,
        slots: opts.slots_per_node,
        seed: line.seed,
        f: opts.f,
        replication: opts.replication,
        points: opts.points,
        granularity: opts.granularity,
        batch_size: opts.batch_size,
        threads: Some(opts.threads),
        faults: line.faults.clone(),
        ..CliOptions::default()
    }
}

/// Events a given job recorded into the shared flight recorder. Every
/// event from a server job carries the `job` arg its
/// [`crate::trace::ScopedSink`] stamped on it.
fn job_events(events: &[TraceEvent], id: u64) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| {
            e.args
                .iter()
                .any(|(k, v)| *k == "job" && matches!(v, ArgValue::Uint(j) if *j == id))
        })
        .cloned()
        .collect()
}

/// Directory-name-safe tenant label for bundle paths.
fn sanitize(tenant: &str) -> String {
    tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Consecutive admission rejections that count as a sustained burst. At
/// the daemon's 500µs retry pause this is ~10ms of solid backpressure.
const REJECTION_BURST_THRESHOLD: u64 = 20;

/// A background thread appending wall-clock metrics snapshots to a JSONL
/// series file every `interval` seconds, plus one final line at
/// shutdown. Lines are `{"t_us": N, "snapshot": { ... }}`.
struct SnapshotSeries {
    stop: mpsc::Sender<()>,
    thread: std::thread::JoinHandle<Result<u64, String>>,
}

impl SnapshotSeries {
    fn start(path: &str, interval: u64, metrics: Metrics) -> Result<Self, Box<dyn Error>> {
        use std::io::Write as _;

        // Probe the path eagerly (creating parents) so a bad
        // --snapshot-series fails the invocation, not the thread.
        flight::write_output("--snapshot-series", path, "")?;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open --snapshot-series output '{path}': {e}"))?;
        let (stop, rx) = mpsc::channel::<()>();
        let path = path.to_owned();
        let epoch = Instant::now();
        let thread = std::thread::Builder::new()
            .name("cbftd-snapshots".to_owned())
            .spawn(move || {
                let mut written = 0u64;
                let append = |file: &mut std::fs::File| -> Result<(), String> {
                    let line = format!(
                        "{{\"t_us\": {}, \"snapshot\": {}}}\n",
                        epoch.elapsed().as_micros(),
                        json_snapshot(&metrics.snapshot())
                    );
                    file.write_all(line.as_bytes())
                        .and_then(|()| file.flush())
                        .map_err(|e| {
                            format!("cannot append --snapshot-series output '{path}': {e}")
                        })
                };
                loop {
                    match rx.recv_timeout(Duration::from_secs(interval)) {
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            append(&mut file)?;
                            written += 1;
                        }
                        // Stop requested (or the daemon dropped the
                        // sender): one final snapshot closes the series.
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                            append(&mut file)?;
                            return Ok(written + 1);
                        }
                    }
                }
            })
            .expect("spawn snapshot-series thread");
        Ok(SnapshotSeries { stop, thread })
    }

    /// Stops the thread after its final snapshot; returns lines written.
    fn finish(self) -> Result<u64, Box<dyn Error>> {
        let _ = self.stop.send(());
        self.thread
            .join()
            .expect("snapshot-series thread panicked")
            .map_err(Into::into)
    }
}

/// Executes a parsed `cbftd` invocation: reads the job stream, drives the
/// server, and returns the human-readable report.
///
/// # Errors
///
/// IO errors reading the jobs file / scripts / inputs (each named with
/// its path and jobs-file line number), and malformed job lines.
pub fn run_daemon(opts: &DaemonOptions) -> Result<String, Box<dyn Error>> {
    let text = match &opts.jobs {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read jobs file '{path}': {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)?;
            buf
        }
    };
    let mut lines = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        match parse_job_line(raw) {
            Ok(Some(line)) => lines.push((lineno + 1, line)),
            Ok(None) => {}
            Err(e) => return Err(format!("jobs line {}: {e}", lineno + 1).into()),
        }
    }

    let metrics = if opts.metrics.is_some()
        || opts.metrics_json.is_some()
        || opts.health_report
        || opts.snapshot_series.is_some()
        || opts.flight_dir.is_some()
    {
        Metrics::new()
    } else {
        Metrics::disabled()
    };

    // The flight recorder is always attached, like the single-run CLI:
    // its fixed-memory rings are the forensic context when a job trips
    // the anomaly detector. A full-capture MemorySink is teed in only
    // when a trace flag asks for one.
    let flight_rec = Arc::new(FlightRecorder::with_default_capacity());
    let mem_sink =
        (opts.trace.is_some() || opts.trace_summary).then(|| Arc::new(MemorySink::new()));
    let tracer = match &mem_sink {
        Some(sink) => {
            let tee: Vec<Arc<dyn TraceSink>> = vec![flight_rec.clone(), sink.clone()];
            Tracer::new(Arc::new(FanoutSink::new(tee)))
        }
        None => Tracer::new(flight_rec.clone()),
    };
    let dp_before = data_plane::snapshot();

    let server = JobServer::start(ServerConfig {
        slots: opts.slots,
        queue_depth: opts.queue_depth,
        compute_threads: opts.compute_threads,
        default_weight: opts.default_weight,
        weights: opts.weights.clone(),
        max_inflight: opts.max_inflight.clone(),
        metrics: metrics.clone(),
        tracer,
        // Per-job metrics hubs feed the per-job bundle forensics.
        job_metrics: opts.flight_dir.is_some(),
    });

    let series = match &opts.snapshot_series {
        Some(path) => Some(SnapshotSeries::start(
            path,
            opts.snapshot_interval,
            metrics.clone(),
        )?),
        None => None,
    };

    // Submit the whole stream. Queue-full responses are absorbed here
    // with a short pause and a retry — the daemon is the polite client;
    // `load_gen` exercises the impolite one. A sustained rejection
    // streak trips the rejection_burst anomaly.
    let started = Instant::now();
    let mut handles = Vec::with_capacity(lines.len());
    let mut contexts: JobContexts = Default::default();
    let mut backpressure = 0u64;
    let mut quota_waits = 0u64;
    let mut burst = RejectionBurstDetector::new(REJECTION_BURST_THRESHOLD);
    let mut server_anomalies: Vec<Anomaly> = Vec::new();
    for (lineno, line) in &lines {
        let (spec, raw_inputs) =
            load_job(opts, line).map_err(|e| format!("jobs line {lineno}: {e}"))?;
        let script_text = spec.script.clone();
        let handle = loop {
            match server.submit(spec.clone()) {
                SubmitOutcome::Admitted(h) => {
                    burst.admitted();
                    break h;
                }
                SubmitOutcome::Rejected(RejectReason::QueueFull { .. }) => {
                    backpressure += 1;
                    server_anomalies.extend(burst.rejected());
                    std::thread::sleep(Duration::from_micros(500));
                }
                // In-flight quota slots free up as the tenant's earlier
                // jobs finish, so these are also worth waiting out.
                SubmitOutcome::Rejected(RejectReason::QuotaExceeded { .. }) => {
                    quota_waits += 1;
                    server_anomalies.extend(burst.rejected());
                    std::thread::sleep(Duration::from_micros(500));
                }
                SubmitOutcome::Rejected(r @ RejectReason::ShuttingDown) => {
                    return Err(format!("jobs line {lineno}: submission rejected: {r}").into())
                }
            }
        };
        if opts.flight_dir.is_some() {
            contexts.insert(handle.id, (line.clone(), script_text, raw_inputs));
        }
        handles.push(handle);
    }

    let mut results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    let elapsed = started.elapsed();
    server.shutdown();
    results.sort_by_key(|r| r.id);

    let mut out = String::new();
    let mut verified = 0usize;
    let mut failed = 0usize;
    // tenant → (jobs, verified, Σqueue_us, Σexec_us)
    let mut by_tenant: std::collections::BTreeMap<String, (usize, usize, u64, u64)> =
        Default::default();
    for r in &results {
        let entry = by_tenant.entry(r.tenant.clone()).or_default();
        entry.0 += 1;
        entry.2 += r.queue_us;
        entry.3 += r.exec_us;
        let status = match &r.outcome {
            Ok(o) if o.verified() => {
                verified += 1;
                entry.1 += 1;
                "VERIFIED".to_owned()
            }
            Ok(_) => "NOT VERIFIED".to_owned(),
            Err(e) => {
                failed += 1;
                format!("ERROR: {e}")
            }
        };
        let t = &r.timeline;
        let _ = writeln!(
            out,
            "job {} tenant={} {status} queue_ms={:.2} exec_ms={:.2} total_ms={:.2} \
             timeline admit@{:.2}ms exec@{:.2}ms done@{:.2}ms",
            r.id,
            r.tenant,
            r.queue_us as f64 / 1e3,
            r.exec_us as f64 / 1e3,
            r.total_us as f64 / 1e3,
            t.admitted_us as f64 / 1e3,
            t.dispatched_us as f64 / 1e3,
            t.completed_us as f64 / 1e3,
        );
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "\n{} jobs in {:.2}s ({:.1} jobs/s): {verified} verified, {failed} errored, \
         {backpressure} queue-full retries absorbed, {quota_waits} quota waits",
        results.len(),
        elapsed.as_secs_f64(),
        results.len() as f64 / secs,
    );
    for (tenant, (total, ok, queue_us, exec_us)) in &by_tenant {
        let n = (*total).max(1) as f64;
        let _ = writeln!(
            out,
            "  tenant {tenant}: {ok}/{total} verified \
             (mean queue {:.2} ms, mean exec {:.2} ms)",
            *queue_us as f64 / n / 1e3,
            *exec_us as f64 / n / 1e3,
        );
    }

    finish_flight(
        &mut out,
        opts,
        &results,
        server_anomalies,
        &flight_rec,
        &metrics,
        &contexts,
    )?;

    if let Some(series) = series {
        let written = series.finish()?;
        let _ = writeln!(
            out,
            "snapshot series: {written} snapshots -> {}",
            opts.snapshot_series.as_deref().unwrap_or(""),
        );
    }

    if let Some(sink) = mem_sink {
        let events = sink.take();
        if let Some(path) = &opts.trace {
            flight::write_output("--trace", path, &chrome_trace_json(&events))?;
        }
        if opts.trace_summary {
            let delta = data_plane::snapshot().since(&dp_before);
            let summary = TraceSummary::from_events(&events)
                .with_counter("records_cloned", delta.records_cloned)
                .with_counter("arcs_shared", delta.arcs_shared)
                .with_counter("bytes_encoded", delta.bytes_encoded)
                .with_counter("digest_bytes_hashed", delta.digest_bytes_hashed)
                .with_counter("tasks_dispatched", delta.tasks_dispatched)
                .with_counter("tasks_stolen", delta.tasks_stolen)
                .with_counter("pool_queue_peak", delta.pool_queue_peak);
            let _ = writeln!(out, "\n{}", summary.render());
        }
    }

    if metrics.enabled() {
        let snap = metrics.snapshot();
        if let Some(path) = &opts.metrics {
            flight::write_output("--metrics", path, &prometheus_text(&snap))?;
        }
        if let Some(path) = &opts.metrics_json {
            flight::write_output("--metrics-json", path, &json_snapshot(&snap))?;
        }
        if opts.health_report {
            // Full snapshot: the server series are wall-domain.
            let report = HealthReport::from_snapshot(&snap);
            let _ = writeln!(out, "\n{}", report.render());
        }
    }
    Ok(out)
}

/// Per-job anomaly detection over the daemon's results, forensic-bundle
/// emission, and flight accounting — the server-side mirror of the
/// single-run CLI's flight tail.
fn finish_flight(
    out: &mut String,
    opts: &DaemonOptions,
    results: &[JobResult],
    server_anomalies: Vec<Anomaly>,
    flight_rec: &FlightRecorder,
    metrics: &Metrics,
    contexts: &JobContexts,
) -> Result<(), Box<dyn Error>> {
    if metrics.enabled() {
        metrics.add(
            Domain::Wall,
            metric_names::FLIGHT_EVENTS,
            &[],
            flight_rec.captured(),
        );
        metrics.add(
            Domain::Wall,
            metric_names::FLIGHT_EVICTED,
            &[],
            flight_rec.evicted(),
        );
    }

    // One drain serves every bundle: each job's events carry the `job`
    // arg its scoped sink stamped.
    let drained = flight_rec.drain();
    let mut anomaly_lines: Vec<String> = Vec::new();
    let mut bundle_lines: Vec<String> = Vec::new();
    let record = |anomalies: &[Anomaly]| {
        if metrics.enabled() {
            for a in anomalies {
                let label = [("kind", LabelValue::from(a.kind.name()))];
                metrics.add(Domain::Wall, metric_names::FLIGHT_ANOMALIES, &label, 1);
            }
        }
    };

    record(&server_anomalies);
    for a in &server_anomalies {
        anomaly_lines.push(format!("  server {}: {}", a.kind, a.detail));
    }

    for r in results {
        let anomalies = match &r.outcome {
            Ok(o) => flight::detect_parallel_anomalies(o, r.snapshot.as_ref()),
            Err(JobError::WorkerLost) => vec![Anomaly {
                kind: AnomalyKind::WorkerLost,
                detail: "slot worker died before delivering a result".to_owned(),
            }],
            // Exec errors (parse failures, missing inputs) and
            // cancellations are reported on the result line; they are
            // not integrity anomalies.
            Err(_) => Vec::new(),
        };
        if anomalies.is_empty() {
            continue;
        }
        record(&anomalies);
        for a in &anomalies {
            anomaly_lines.push(format!(
                "  job {} ({}) {}: {}",
                r.id, r.tenant, a.kind, a.detail
            ));
        }
        let Some(dir) = &opts.flight_dir else {
            continue;
        };
        let Some((line, script, raw_inputs)) = contexts.get(&r.id) else {
            continue;
        };
        let spec = BundleSpec {
            anomalies: &anomalies,
            script,
            inputs: raw_inputs,
            seed: line.seed,
            events: &job_events(&drained, r.id),
            snapshot: r.snapshot.as_ref(),
            repro: flight::repro_command(&job_cli_options(opts, line)),
            context: vec![
                ("mode".to_owned(), "cbftd".to_owned()),
                ("tenant".to_owned(), r.tenant.clone()),
                ("job".to_owned(), r.id.to_string()),
                ("slots".to_owned(), opts.slots.to_string()),
                ("threads".to_owned(), opts.threads.to_string()),
            ],
        };
        let name = format!("job{}-{}-seed{}", r.id, sanitize(&r.tenant), line.seed);
        let path = flight::write_bundle(Path::new(dir), &name, &spec)?;
        if metrics.enabled() {
            metrics.add(Domain::Wall, metric_names::FLIGHT_BUNDLES, &[], 1);
        }
        bundle_lines.push(format!("forensic bundle: {}", path.display()));
    }

    if !anomaly_lines.is_empty() {
        let _ = writeln!(out, "\nanomalies detected:");
        for line in anomaly_lines {
            let _ = writeln!(out, "{line}");
        }
    }
    for line in bundle_lines {
        let _ = writeln!(out, "{line}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DaemonOptions, UsageError> {
        parse_daemon_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_a_full_invocation() {
        let opts = parse(&[
            "jobs.txt",
            "--slots",
            "4",
            "--queue-depth",
            "8",
            "--weight",
            "acme=3",
            "--weight",
            "beta=1",
            "--max-inflight",
            "acme=2",
            "--threads",
            "2",
            "--replication",
            "quorum",
            "--metrics",
            "m.prom",
            "--health-report",
        ])
        .unwrap();
        assert_eq!(opts.jobs.as_deref(), Some("jobs.txt"));
        assert_eq!(opts.slots, 4);
        assert_eq!(opts.queue_depth, 8);
        assert_eq!(
            opts.weights,
            vec![("acme".to_owned(), 3), ("beta".to_owned(), 1)]
        );
        assert_eq!(opts.max_inflight, vec![("acme".to_owned(), 2)]);
        assert_eq!(opts.replication, Replication::Quorum);
        assert_eq!(opts.metrics.as_deref(), Some("m.prom"));
        assert!(opts.health_report);
    }

    #[test]
    fn zero_valued_flags_are_rejected_at_parse_time() {
        for (args, needle) in [
            (&["--slots", "0"][..], "--slots must be at least 1"),
            (
                &["--queue-depth", "0"][..],
                "--queue-depth must be at least 1",
            ),
            (&["--threads", "0"][..], "--threads must be at least 1"),
            (
                &["--replication", "0"][..],
                "--replication must be at least 1",
            ),
            (
                &["--granularity", "0"][..],
                "--granularity must be at least 1",
            ),
            (&["--nodes", "0"][..], "--nodes must be at least 1"),
            (
                &["--node-slots", "0"][..],
                "--node-slots must be at least 1",
            ),
            (&["--weight", "a=0"][..], "--weight must be at least 1"),
            (
                &["--max-inflight", "a=0"][..],
                "--max-inflight must be at least 1",
            ),
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.0.contains(needle), "{args:?}: {err}");
        }
    }

    #[test]
    fn parses_observability_flags() {
        let opts = parse(&[
            "jobs.txt",
            "--trace",
            "t.json",
            "--trace-summary",
            "--flight-dir",
            "flights",
            "--snapshot-series",
            "series.jsonl",
            "--snapshot-interval",
            "5",
        ])
        .unwrap();
        assert_eq!(opts.trace.as_deref(), Some("t.json"));
        assert!(opts.trace_summary);
        assert_eq!(opts.flight_dir.as_deref(), Some("flights"));
        assert_eq!(opts.snapshot_series.as_deref(), Some("series.jsonl"));
        assert_eq!(opts.snapshot_interval, 5);

        let err = parse(&["--snapshot-interval", "0"]).unwrap_err();
        assert!(
            err.0.contains("--snapshot-interval must be at least 1"),
            "{err}"
        );
    }

    #[test]
    fn job_line_fault_tokens_parse() {
        use crate::core::Behavior;

        let line =
            parse_job_line("acme 7 s.pig edges=e.csv fault:0:commission fault:1:omission:0.5")
                .unwrap()
                .unwrap();
        assert_eq!(line.inputs, vec![("edges".to_owned(), "e.csv".to_owned())]);
        assert_eq!(
            line.faults,
            vec![
                (0, Behavior::Commission { probability: 1.0 }),
                (1, Behavior::Omission { probability: 0.5 }),
            ]
        );

        let err = parse_job_line("acme 7 s.pig fault:zero:commission").unwrap_err();
        assert!(err.0.contains("fault"), "{err}");
    }

    #[test]
    fn job_lines_parse_and_reject_malformed() {
        assert_eq!(parse_job_line("").unwrap(), None);
        assert_eq!(parse_job_line("   # just a comment").unwrap(), None);
        let line = parse_job_line("acme 7 s.pig edges=e.csv extra=x.csv # trailing")
            .unwrap()
            .unwrap();
        assert_eq!(line.tenant, "acme");
        assert_eq!(line.seed, 7);
        assert_eq!(line.script, "s.pig");
        assert_eq!(line.inputs.len(), 2);

        let err = parse_job_line("acme").unwrap_err();
        assert!(err.0.contains("missing a seed"), "{err}");
        let err = parse_job_line("acme seven s.pig").unwrap_err();
        assert!(err.0.contains("not a valid number"), "{err}");
        let err = parse_job_line("acme 7").unwrap_err();
        assert!(err.0.contains("missing a script path"), "{err}");
        let err = parse_job_line("acme 7 s.pig justname").unwrap_err();
        assert!(err.0.contains("wants NAME=FILE"), "{err}");
    }

    #[test]
    fn missing_jobs_file_and_script_are_reported_with_paths() {
        let opts = parse(&["definitely_missing_jobs.txt"]).unwrap();
        let err = run_daemon(&opts).unwrap_err();
        assert!(
            err.to_string()
                .contains("cannot read jobs file 'definitely_missing_jobs.txt'"),
            "{err}"
        );

        let dir = std::env::temp_dir().join(format!("cbftd_missing_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("jobs.txt");
        std::fs::write(&jobs, "acme 1 nonexistent_script.pig\n").unwrap();
        let opts = parse(&[jobs.to_str().unwrap()]).unwrap();
        let err = run_daemon(&opts).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("jobs line 1"), "{msg}");
        assert!(
            msg.contains("cannot read script 'nonexistent_script.pig'"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_daemon_run_from_files() {
        let dir = std::env::temp_dir().join(format!("cbftd_e2e_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let rows: Vec<String> = (0..40).map(|i| format!("{},{}", i % 4, i)).collect();
        std::fs::write(&data, rows.join("\n")).unwrap();
        let jobs = dir.join("jobs.txt");
        let mut body = String::from("# three tenants, two jobs each\n");
        for (i, tenant) in ["acme", "beta", "core", "acme", "beta", "core"]
            .iter()
            .enumerate()
        {
            let _ = writeln!(
                body,
                "{tenant} {} {} edges={}",
                i + 1,
                script.display(),
                data.display()
            );
        }
        std::fs::write(&jobs, body).unwrap();
        let prom = dir.join("m.prom");

        let opts = parse(&[
            jobs.to_str().unwrap(),
            "--slots",
            "3",
            "--weight",
            "acme=2",
            "--max-inflight",
            "acme=1",
            "--metrics",
            prom.to_str().unwrap(),
            "--health-report",
        ])
        .unwrap();
        let report = run_daemon(&opts).unwrap();
        for id in 0..6 {
            assert!(
                report.contains(&format!("job {id} ")),
                "job {id} missing: {report}"
            );
        }
        assert_eq!(report.matches("VERIFIED").count(), 6, "{report}");
        assert!(report.contains("6 jobs in"), "{report}");
        assert!(report.contains("quota waits"), "{report}");
        assert!(report.contains("tenant acme: 2/2 verified"), "{report}");
        assert!(report.contains("job server:"), "{report}");
        assert!(report.contains("admitted=6"), "{report}");

        let text = std::fs::read_to_string(&prom).unwrap();
        crate::metrics::validate_prometheus_text(&text)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
        assert!(text.contains("cbft_server_jobs_admitted_total"), "{text}");
        assert!(text.contains("cbft_server_job_latency_us"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn daemon_flight_bundle_snapshot_series_and_trace() {
        let dir = std::env::temp_dir().join(format!("cbftd_flight_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let rows: Vec<String> = (0..40).map(|i| format!("{},{}", i % 4, i)).collect();
        std::fs::write(&data, rows.join("\n")).unwrap();
        let jobs = dir.join("jobs.txt");
        std::fs::write(
            &jobs,
            format!(
                "acme 7 {s} edges={d}\n\
                 evil 9 {s} edges={d} fault:0:commission\n",
                s = script.display(),
                d = data.display()
            ),
        )
        .unwrap();
        let flights = dir.join("flights");
        let series = dir.join("series.jsonl");
        let trace = dir.join("trace.json");

        let opts = parse(&[
            jobs.to_str().unwrap(),
            "--flight-dir",
            flights.to_str().unwrap(),
            "--snapshot-series",
            series.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--trace-summary",
        ])
        .unwrap();
        let report = run_daemon(&opts).unwrap();

        // Both jobs complete (the faulty one after escalation), both
        // result lines carry the lifecycle timeline.
        assert_eq!(report.matches("VERIFIED").count(), 2, "{report}");
        assert_eq!(report.matches("timeline admit@").count(), 2, "{report}");
        assert!(report.contains("anomalies detected:"), "{report}");
        assert!(report.contains("digest_mismatch"), "{report}");
        assert!(report.contains("forensic bundle:"), "{report}");

        // Exactly one bundle: the faulty job's, naming replica 0.
        let bundles: Vec<_> = std::fs::read_dir(&flights)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(bundles.len(), 1, "{bundles:?}");
        let bundle = &bundles[0];
        assert!(
            bundle
                .file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .contains("evil"),
            "{bundle:?}"
        );
        let manifest = std::fs::read_to_string(bundle.join("manifest.json")).unwrap();
        assert!(manifest.contains("digest_mismatch"), "{manifest}");
        assert!(manifest.contains("{0}"), "names replica 0: {manifest}");
        assert!(manifest.contains("\"tenant\": \"evil\""), "{manifest}");
        assert!(manifest.contains("fault 0:commission"), "{manifest}");
        // The bundle carries the per-job sim forensics and the event log.
        let prom = std::fs::read_to_string(bundle.join("sim/metrics.prom")).unwrap();
        crate::metrics::validate_prometheus_text(&prom)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{prom}"));
        assert!(!std::fs::read_to_string(bundle.join("sim/events.log"))
            .unwrap()
            .is_empty());
        assert!(bundle.join("script.pig").exists());
        assert!(bundle.join("input_edges.csv").exists());
        assert!(bundle.join("repro.sh").exists());

        // The snapshot series holds at least the final line, each line
        // one JSON object with a t_us offset.
        let series_text = std::fs::read_to_string(&series).unwrap();
        let lines: Vec<_> = series_text.lines().collect();
        assert!(!lines.is_empty(), "{series_text}");
        for line in &lines {
            assert!(line.starts_with("{\"t_us\": "), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(report.contains("snapshot series:"), "{report}");

        // The Chrome trace landed and the summary rendered.
        assert!(std::fs::read_to_string(&trace).unwrap().contains("\"pid\""));
        assert!(report.contains("trace summary"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
