//! `cbftd` — the multi-tenant ClusterBFT job server: admit a stream of
//! job submissions through a bounded weighted-fair queue and run them
//! concurrently with per-job verification. See `cbftd --help` and
//! [`clusterbft_repro::server_cli`].

use clusterbft_repro::server_cli;

fn main() {
    let opts = match server_cli::parse_daemon_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}\n\n{}", server_cli::DAEMON_USAGE);
            std::process::exit(2);
        }
    };
    match server_cli::run_daemon(&opts) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
