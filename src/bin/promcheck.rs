//! Validate a Prometheus text-exposition file produced by `--metrics`.
//!
//! Usage: `promcheck FILE [FILE...]` — exits nonzero (with the line
//! number of the first violation) if any file fails the format checks;
//! used by CI to keep the `--metrics` output scrapeable.

use std::process::ExitCode;

use clusterbft_repro::metrics::validate_prometheus_text;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: promcheck FILE [FILE...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => match validate_prometheus_text(&text) {
                Ok(lines) => println!("{path}: OK ({lines} lines)"),
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{path}: unreadable — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
