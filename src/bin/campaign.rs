//! `campaign` — run a deterministic chaos campaign against the
//! ClusterBFT engine.
//!
//! Fans `--scenarios` seeded fault scenarios (commission / omission /
//! crash / colluding mixes swept over the replication degree, digest
//! granularity and verification-point counts) across `--threads`
//! campaign workers, checks every verdict against the oracle, and
//! prints the aggregate report — byte-identical for any `--threads` /
//! `--compute-threads` combination. On oracle divergence the offending
//! scenarios are shrunk to minimal counterexamples, emitted as
//! ready-to-pin regression tests, and the process exits 1.
//!
//! `--inject-divergence` turns on the oracle's naming-truncation fault
//! (only the first implicated replica is kept), demonstrating the whole
//! divergence → shrink → regression-test path on a healthy build.

use std::error::Error;
use std::process::ExitCode;

use clusterbft_repro::campaign::{run_campaign, CampaignConfig, Counterexample, Scenario};
use clusterbft_repro::cli::resolve_seed;
use clusterbft_repro::metrics::prometheus_text;

const USAGE: &str = "\
campaign — deterministic chaos campaign runner for the ClusterBFT engine

USAGE:
    campaign [OPTIONS]

OPTIONS:
    --scenarios N        seeded scenarios to run        [default: 1000]
    --seed N             campaign seed; takes precedence over the
                         CBFT_SEED environment variable [default: 1]
    --threads N          campaign worker threads (scenario fan-out)
                                                        [default: 1]
    --compute-threads N  compute-pool threads inside each engine run
                                                        [default: 1]
    --cross-check        additionally re-run every scenario on the
                         inline pool and require identical outcomes
    --inject-divergence  truncate the named-suspect set to one element
                         before the oracle check (demonstrates the
                         shrinker on a healthy build)
    --no-shrink          report divergences without minimizing them
    --report FILE        write the aggregate report here as well
    --metrics FILE       write the campaign metrics in Prometheus text
                         exposition format

The report is a pure function of (--seed, --scenarios, --cross-check,
--inject-divergence): any thread setting produces identical bytes.
Exits 0 when every scenario conforms to the oracle, 1 on divergence,
2 on usage errors.";

struct Args {
    config: CampaignConfig,
    shrink: bool,
    report: Option<String>,
    metrics: Option<String>,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut out = Args {
        config: CampaignConfig::default(),
        shrink: true,
        report: None,
        metrics: None,
    };
    let mut seed_flag = None;
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} requires a value"))
    };
    let num = |v: String, flag: &str| -> Result<u64, String> {
        v.parse()
            .map_err(|_| format!("{flag}: '{v}' is not a valid number"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenarios" => {
                out.config.scenarios = num(need(&mut it, "--scenarios")?, "--scenarios")?
            }
            "--seed" => seed_flag = Some(num(need(&mut it, "--seed")?, "--seed")?),
            "--threads" => {
                out.config.threads = num(need(&mut it, "--threads")?, "--threads")? as usize
            }
            "--compute-threads" => {
                out.config.run.compute_threads =
                    num(need(&mut it, "--compute-threads")?, "--compute-threads")? as usize
            }
            "--cross-check" => out.config.run.cross_check = true,
            "--inject-divergence" => out.config.run.truncate_naming = true,
            "--no-shrink" => out.shrink = false,
            "--report" => out.report = Some(need(&mut it, "--report")?),
            "--metrics" => out.metrics = Some(need(&mut it, "--metrics")?),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    out.config.seed = resolve_seed(seed_flag).map_err(|e| e.0)?;
    Ok(out)
}

fn run(args: &Args) -> Result<bool, Box<dyn Error>> {
    let (report, results) = run_campaign(&args.config);
    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = &args.report {
        std::fs::write(path, &rendered)?;
    }
    if let Some(path) = &args.metrics {
        std::fs::write(path, prometheus_text(&report.to_metrics().snapshot()))?;
    }
    if report.divergences() == 0 {
        return Ok(true);
    }

    eprintln!(
        "\n{} scenario(s) diverged from the oracle",
        report.divergent.len()
    );
    if args.shrink {
        for index in report.divergent.iter().take(5) {
            let scenario = Scenario::generate(args.config.seed, *index);
            let ce =
                Counterexample::minimize(args.config.seed, *index, &scenario, &args.config.run);
            eprintln!(
                "\nscenario {index}: shrunk in {} step(s); pin with:\n\n{}",
                ce.steps,
                ce.to_regression_test()
            );
        }
        if report.divergent.len() > 5 {
            eprintln!(
                "... ({} more divergent scenarios)",
                report.divergent.len() - 5
            );
        }
    } else {
        for r in results
            .iter()
            .filter(|r| !r.divergences.is_empty())
            .take(20)
        {
            for d in &r.divergences {
                eprintln!("scenario {}: [{}] {}", r.index, d.rule, d.detail);
            }
        }
    }
    Ok(false)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            if !e.starts_with("campaign —") {
                eprintln!("\n{USAGE}");
            }
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
