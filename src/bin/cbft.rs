//! `cbft` — run a data-flow script with BFT-verified execution on a
//! simulated cluster. See `cbft --help` and [`clusterbft_repro::cli`].

use clusterbft_repro::cli;

fn main() {
    let opts = match cli::parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    match cli::run(&opts) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
