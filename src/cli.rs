//! Argument parsing and driver logic for the `cbft` command-line tool.
//!
//! Kept in the library (rather than the binary) so the parsing rules are
//! unit-testable. No external argument-parsing dependency: the grammar is
//! small and fixed.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use crate::core::{
    Adversary, Behavior, Cluster, ClusterBft, ExecutorConfig, JobConfig, ParallelExecutor, Record,
    Replication, Value, VerifyMode, VpPolicy,
};
use crate::dataflow::Script;
use crate::flight::{self, Anomaly, BundleSpec};
use crate::mapreduce::data_plane::{self, DataPlaneSnapshot};
use crate::metrics::{
    json_snapshot, names as metric_names, prometheus_text, Domain, HealthReport, Metrics, Snapshot,
};
use crate::trace::{
    chrome_trace_json, FanoutSink, FlightRecorder, MemorySink, TraceSink, TraceSummary, Tracer,
};

/// Parsed command-line options for one `cbft` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct CliOptions {
    /// Path of the script file to execute.
    pub script: String,
    /// Inputs as `name=path` pairs (CSV-ish record files).
    pub inputs: Vec<(String, String)>,
    /// Untrusted-tier size.
    pub nodes: usize,
    /// Slots per node.
    pub slots: usize,
    /// Simulation seed. Resolved by [`resolve_seed`]: `--seed` wins,
    /// then the `CBFT_SEED` environment variable, then the default of 1.
    /// Both execution paths consume exactly this one value — the
    /// sequential pipeline as the cluster seed, the `--threads` path as
    /// the executor's master seed.
    pub seed: u64,
    /// Fault bound `f`.
    pub f: usize,
    /// Replication policy.
    pub replication: Replication,
    /// Marker-chosen verification points.
    pub points: u32,
    /// Adversary model.
    pub adversary: Adversary,
    /// Digest granularity `d`.
    pub granularity: usize,
    /// Injected faults: `(node, behavior)`.
    pub faults: Vec<(usize, Behavior)>,
    /// Enable map-side combiners.
    pub combiners: bool,
    /// Run the logical-plan optimizer before execution.
    pub optimize: bool,
    /// Worker threads for the parallel replica executor. `None` keeps the
    /// classic sequential pipeline; `Some(0)` means one thread per replica.
    /// In this mode `--fault N:...` targets replica `N`, not node `N`.
    pub threads: Option<usize>,
    /// Compute-pool threads for data-parallel task payloads inside the
    /// engine. `None` defers to `CBFT_COMPUTE_THREADS` (inline when unset);
    /// `Some(0)` sizes the pool to the host's cores. Works in both the
    /// sequential and `--threads` modes without changing any verdict.
    pub compute_threads: Option<usize>,
    /// Rows per columnar batch on the task data plane. `None` keeps the
    /// engine default (1024); `Some(0)` forces row-at-a-time execution.
    /// Host-side only: digests and verdicts are identical for any value.
    pub batch_size: Option<usize>,
    /// Verification tier for the `--threads` path: full replication,
    /// single-run spot-check sampling, or hybrid (sample, escalate to
    /// replication on suspicion).
    pub verify_mode: VerifyMode,
    /// Fraction of completed tasks the spot-checker re-executes in the
    /// sample/hybrid tiers. `None` keeps the executor default.
    pub sample_rate: Option<f64>,
    /// Print the instrumented plan in Graphviz dot and exit.
    pub emit_dot: bool,
    /// Rows of each output to print.
    pub show_rows: usize,
    /// Write a Chrome-trace-format (Perfetto-loadable) JSON trace here.
    pub trace: Option<String>,
    /// Print an aggregated trace summary (per-phase time, verification
    /// lag per key, data-plane counters) after the run report.
    pub trace_summary: bool,
    /// Write a Prometheus text-exposition metrics dump here.
    pub metrics: Option<String>,
    /// Write a JSON metrics snapshot here.
    pub metrics_json: Option<String>,
    /// Append the per-replica fault-forensics health report to the
    /// run report.
    pub health_report: bool,
    /// Directory receiving forensic bundles when the always-on flight
    /// recorder detects an anomaly (mismatch, escalation, withheld
    /// output, ...). `None` still detects and reports anomalies, but
    /// writes nothing.
    pub flight_dir: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            script: String::new(),
            inputs: Vec::new(),
            nodes: 16,
            slots: 3,
            seed: 1,
            f: 1,
            replication: Replication::Full,
            points: 2,
            adversary: Adversary::Strong,
            granularity: usize::MAX,
            faults: Vec::new(),
            combiners: false,
            optimize: false,
            threads: None,
            compute_threads: None,
            batch_size: None,
            verify_mode: VerifyMode::Replicate,
            sample_rate: None,
            emit_dot: false,
            show_rows: 10,
            trace: None,
            trace_summary: false,
            metrics: None,
            metrics_json: None,
            health_report: false,
            flight_dir: None,
        }
    }
}

/// A CLI usage error, printed with the usage text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for UsageError {}

/// The usage text for `cbft --help`.
pub const USAGE: &str = "\
cbft — run a data-flow script with BFT-verified execution on a simulated cluster

USAGE:
    cbft <script.pig> --input NAME=FILE [--input NAME=FILE ...] [OPTIONS]

OPTIONS:
    --nodes N            untrusted-tier size            [default: 16]
    --slots N            task slots per node            [default: 3]
    --seed N             simulation seed; takes precedence over the
                         CBFT_SEED environment variable [default: 1]
    --f N                fault bound f                  [default: 1]
    --replication R      optimistic | quorum | full | an integer  [default: full]
    --points N           marker-chosen verification points        [default: 2]
    --adversary A        strong | weak                  [default: strong]
    --granularity D      records per digest chunk       [default: whole stream]
    --fault N:KIND[:P]   inject a fault on node N; KIND = commission | omission
                         (with probability P, default 1.0) | crash
    --combiners          enable map-side combiners
    --optimize           run the logical-plan optimizer first
    --threads N          run replicas on N worker threads (0 = one per
                         replica), streaming digests into the verifier as
                         they are produced; --fault then targets replica N
                         instead of node N                [default: sequential]
    --compute-threads N  share an N-thread compute pool for task payloads
                         (map/reduce evaluation, digesting, shuffle gather);
                         0 = one thread per host core. Verdicts and traces
                         are identical for any value     [default: inline]
    --batch-size N       rows per columnar batch on the task data plane;
                         0 = row-at-a-time execution. Digests, outputs and
                         verdicts are identical for any value [default: 1024]
    --verify-mode M      verification tier on the --threads path:
                           replicate  f+1..3f+1 replicated execution
                           sample     run once; a trusted spot-checker
                                      re-executes a seeded sample of tasks
                                      against their recorded digests
                           hybrid     sample, escalating to full replication
                                      on any mismatch or suspicion
                                                        [default: replicate]
    --sample-rate R      fraction of tasks spot-checked in the sample and
                         hybrid tiers, in [0, 1]        [default: 0.1]
    --dot                print the plan in Graphviz dot and exit
    --show N             rows of each output to print   [default: 10]
    --trace FILE         record a Chrome-trace-format JSON trace of the run
                         (load it in Perfetto or chrome://tracing)
    --trace-summary      print per-phase timings, per-key verification lag
                         and data-plane counters after the report
    --metrics FILE       write run metrics in Prometheus text exposition
                         format (counters, gauges, log2-bucket histograms;
                         every sample carries a domain=\"sim\"|\"wall\" label)
    --metrics-json FILE  write the same metrics snapshot as JSON
    --health-report      print the fault-forensics health report: per-replica
                         digest mismatch/omission counters, suspicion band
                         trajectories, verification lag quantiles and
                         escalation round costs
    --flight-dir DIR     write a self-contained forensic bundle under DIR
                         when the always-on flight recorder detects an
                         anomaly (digest mismatch, escalation, withheld
                         output, spot-check mismatch, suspicion crossing):
                         canonical ring events, sim metrics, health report,
                         script+input copies and a one-shot repro command

ENVIRONMENT:
    CBFT_SEED            simulation seed used when --seed is absent; the
                         flag always wins over the variable

Input files are one record per line, comma-separated; fields parse as
integers when possible, the literal `null` as null, anything else as text.";

/// Resolves the simulation seed: an explicit `--seed` flag wins, then a
/// set-and-valid `CBFT_SEED` environment variable, then the default of 1.
/// Shared by the `cbft` CLI (both the sequential and `--threads` paths
/// receive the resolved value via [`CliOptions::seed`]) and the
/// `campaign` binary, so every entry point agrees on precedence.
///
/// # Errors
///
/// Returns a [`UsageError`] when the flag is absent and `CBFT_SEED` is
/// set to something that does not parse as a `u64`.
pub fn resolve_seed(flag: Option<u64>) -> Result<u64, UsageError> {
    if let Some(seed) = flag {
        return Ok(seed);
    }
    match std::env::var("CBFT_SEED") {
        Ok(v) => parse_num(&v, "CBFT_SEED"),
        Err(_) => Ok(1),
    }
}

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the offending argument.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOptions, UsageError> {
    let mut opts = CliOptions::default();
    let mut seed_flag = None;
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next()
            .ok_or_else(|| UsageError(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--input" => {
                let v = need(&mut it, "--input")?;
                let (name, path) = v
                    .split_once('=')
                    .ok_or_else(|| UsageError(format!("--input wants NAME=FILE, got '{v}'")))?;
                opts.inputs.push((name.to_owned(), path.to_owned()));
            }
            "--nodes" => {
                opts.nodes = positive(parse_num(&need(&mut it, "--nodes")?, "--nodes")?, "--nodes")?
            }
            "--slots" => {
                opts.slots = positive(parse_num(&need(&mut it, "--slots")?, "--slots")?, "--slots")?
            }
            "--seed" => seed_flag = Some(parse_num(&need(&mut it, "--seed")?, "--seed")?),
            "--f" => opts.f = parse_num(&need(&mut it, "--f")?, "--f")?,
            "--points" => opts.points = parse_num(&need(&mut it, "--points")?, "--points")?,
            "--granularity" => {
                opts.granularity = positive(
                    parse_num(&need(&mut it, "--granularity")?, "--granularity")?,
                    "--granularity",
                )?
            }
            "--show" => opts.show_rows = parse_num(&need(&mut it, "--show")?, "--show")?,
            "--replication" => {
                let v = need(&mut it, "--replication")?;
                opts.replication = match v.as_str() {
                    "optimistic" => Replication::Optimistic,
                    "quorum" => Replication::Quorum,
                    "full" => Replication::Full,
                    n => Replication::Exact(positive(
                        parse_num(n, "--replication")?,
                        "--replication",
                    )?),
                };
            }
            "--adversary" => {
                let v = need(&mut it, "--adversary")?;
                opts.adversary = match v.as_str() {
                    "strong" => Adversary::Strong,
                    "weak" => Adversary::Weak,
                    other => {
                        return Err(UsageError(format!(
                            "--adversary wants strong|weak, got '{other}'"
                        )))
                    }
                };
            }
            "--fault" => {
                let v = need(&mut it, "--fault")?;
                opts.faults.push(parse_fault(&v)?);
            }
            "--threads" => {
                opts.threads = Some(parse_num(&need(&mut it, "--threads")?, "--threads")?)
            }
            "--compute-threads" => {
                opts.compute_threads = Some(parse_num(
                    &need(&mut it, "--compute-threads")?,
                    "--compute-threads",
                )?)
            }
            "--batch-size" => {
                opts.batch_size = Some(checked_batch_size(&need(&mut it, "--batch-size")?)?)
            }
            "--verify-mode" => {
                let v = need(&mut it, "--verify-mode")?;
                opts.verify_mode = VerifyMode::parse(&v).ok_or_else(|| {
                    UsageError(format!(
                        "--verify-mode wants replicate|sample|hybrid, got '{v}'"
                    ))
                })?;
            }
            "--sample-rate" => {
                let rate: f64 = parse_num(&need(&mut it, "--sample-rate")?, "--sample-rate")?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(UsageError(format!(
                        "--sample-rate must be within [0, 1], got {rate}"
                    )));
                }
                opts.sample_rate = Some(rate);
            }
            "--trace" => opts.trace = Some(need(&mut it, "--trace")?),
            "--trace-summary" => opts.trace_summary = true,
            "--metrics" => opts.metrics = Some(need(&mut it, "--metrics")?),
            "--metrics-json" => opts.metrics_json = Some(need(&mut it, "--metrics-json")?),
            "--health-report" => opts.health_report = true,
            "--flight-dir" => opts.flight_dir = Some(need(&mut it, "--flight-dir")?),
            "--combiners" => opts.combiners = true,
            "--optimize" => opts.optimize = true,
            "--dot" => opts.emit_dot = true,
            "--help" | "-h" => return Err(UsageError(USAGE.to_owned())),
            other if !other.starts_with('-') && opts.script.is_empty() => {
                opts.script = other.to_owned();
            }
            other => return Err(UsageError(format!("unknown argument '{other}'"))),
        }
    }
    if opts.script.is_empty() {
        return Err(UsageError("missing script file (see --help)".to_owned()));
    }
    if opts.verify_mode != VerifyMode::Replicate && opts.threads.is_none() {
        return Err(UsageError(format!(
            "--verify-mode {} needs the parallel executor; add --threads N",
            opts.verify_mode.name()
        )));
    }
    opts.seed = resolve_seed(seed_flag)?;
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("{flag}: '{s}' is not a valid number")))
}

/// Rejects a zero where the engine would later panic with a less helpful
/// message (`--nodes 0`, `--slots 0`, `--granularity 0`) or silently
/// clamp (`--replication 0`). Validation happens at parse time so the
/// error names the flag, not an engine internals assertion.
fn positive(n: usize, flag: &str) -> Result<usize, UsageError> {
    if n == 0 {
        return Err(UsageError(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// Parses and bounds a `--batch-size` value. `0` is the documented
/// row-at-a-time path and stays valid; values beyond 2^32 rows per batch
/// could only overflow capacity arithmetic on the data plane, so they
/// are rejected here with a pointer at the row path instead.
pub fn checked_batch_size(s: &str) -> Result<usize, UsageError> {
    const MAX: u64 = 1 << 32;
    let n: u64 = parse_num(s, "--batch-size")?;
    if n > MAX {
        return Err(UsageError(format!(
            "--batch-size {n} is unreasonably large (max {MAX}); use 0 for row-at-a-time execution"
        )));
    }
    Ok(n as usize)
}

/// Parses `N:KIND[:P]` fault specs.
pub fn parse_fault(spec: &str) -> Result<(usize, Behavior), UsageError> {
    let mut parts = spec.split(':');
    let node: usize = parse_num(
        parts
            .next()
            .ok_or_else(|| UsageError("empty --fault".into()))?,
        "--fault",
    )?;
    let kind = parts
        .next()
        .ok_or_else(|| UsageError(format!("--fault '{spec}' is missing a kind")))?;
    let probability: f64 = match parts.next() {
        Some(p) => parse_num(p, "--fault probability")?,
        None => 1.0,
    };
    let behavior = match kind {
        "commission" => Behavior::Commission { probability },
        "omission" => Behavior::Omission { probability },
        "crash" => Behavior::Crashed,
        other => {
            return Err(UsageError(format!(
                "--fault kind must be commission|omission|crash, got '{other}'"
            )))
        }
    };
    Ok((node, behavior))
}

/// Parses one CSV-ish line into a record: integers where possible,
/// `null` as null, everything else as text. Empty lines are skipped by
/// the caller.
pub fn parse_record(line: &str) -> Record {
    line.split(',')
        .map(|field| {
            let field = field.trim();
            if field.eq_ignore_ascii_case("null") {
                Value::Null
            } else if let Ok(i) = field.parse::<i64>() {
                Value::Int(i)
            } else {
                Value::str(field)
            }
        })
        .collect()
}

/// Renders one record as a CSV-ish line (inverse of [`parse_record`] for
/// flat records).
pub fn render_record(r: &Record) -> String {
    r.fields()
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Executes a parsed invocation: loads inputs, runs the script through
/// ClusterBFT and returns the human-readable report.
///
/// # Errors
///
/// IO errors reading the script/input files, and any ClusterBFT submission
/// error.
pub fn run(opts: &CliOptions) -> Result<String, Box<dyn Error>> {
    use std::fmt::Write as _;

    let source = std::fs::read_to_string(&opts.script)
        .map_err(|e| format!("cannot read script '{}': {e}", opts.script))?;
    if opts.emit_dot {
        let plan = Script::parse(&source)?.into_plan();
        return Ok(plan.to_dot(&[]));
    }

    let mut inputs: HashMap<String, Vec<Record>> = HashMap::new();
    // Raw input texts, retained only when a bundle could need them.
    let mut raw_inputs: Vec<(String, String)> = Vec::new();
    for (name, path) in &opts.inputs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read input '{name}' from '{path}': {e}"))?;
        let records: Vec<Record> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(parse_record)
            .collect();
        inputs.insert(name.clone(), records);
        if opts.flight_dir.is_some() {
            raw_inputs.push((name.clone(), text));
        }
    }

    if opts.threads.is_some() {
        return run_parallel(opts, &source, inputs, &raw_inputs);
    }

    let (tracer, sink, flight_rec) = make_tracer(opts);
    let metrics = make_metrics(opts);
    let dp_before = data_plane::snapshot();

    let mut builder = Cluster::builder()
        .nodes(opts.nodes)
        .slots_per_node(opts.slots)
        .seed(opts.seed);
    for &(node, behavior) in &opts.faults {
        builder = builder.node_behavior(node, behavior);
    }
    let mut config = JobConfig::builder()
        .expected_failures(opts.f)
        .replication(opts.replication)
        .vp_policy(VpPolicy::Marked(opts.points))
        .adversary(opts.adversary)
        .digest_granularity(opts.granularity)
        .combiners(opts.combiners)
        .optimize_plans(opts.optimize);
    if let Some(n) = opts.compute_threads {
        config = config.compute_threads(n);
    }
    if let Some(n) = opts.batch_size {
        config = config.batch_records(n);
    }
    let config = config.build();
    let mut cbft = ClusterBft::new(builder.build(), config);
    cbft.set_tracer(tracer);
    cbft.set_metrics(metrics.clone());
    for (name, records) in inputs {
        cbft.load_input(&name, records)?;
    }

    let outcome = cbft.submit_script(&source)?;
    let mut out = String::new();
    let _ = writeln!(out, "{outcome}");
    let _ = writeln!(
        out,
        "replicas per attempt: {:?}   digest reports: {}",
        outcome.replicas_per_attempt(),
        outcome.digest_reports()
    );
    for name in outcome.outputs() {
        let records = cbft
            .cluster()
            .storage()
            .peek(name)
            .ok_or_else(|| format!("published output '{name}' is missing from storage"))?;
        let _ = writeln!(out, "\n== {name} ({} records) ==", records.len());
        for r in records.iter().take(opts.show_rows) {
            let _ = writeln!(out, "{}", render_record(r));
        }
        if records.len() > opts.show_rows {
            let _ = writeln!(out, "... ({} more)", records.len() - opts.show_rows);
        }
    }
    if let Some(analyzer) = cbft.fault_analyzer() {
        if !analyzer.suspects().is_empty() {
            let _ = writeln!(out, "\nsuspect sets: {:?}", analyzer.suspects());
        }
    }
    let anomalies = flight::detect_sequential_anomalies(&outcome);
    finish_flight(
        &mut out,
        opts,
        anomalies,
        &flight_rec,
        &metrics,
        &source,
        &raw_inputs,
    )?;
    finish_trace(&mut out, opts, sink, dp_before)?;
    finish_metrics(&mut out, opts, &metrics)?;
    Ok(out)
}

/// Builds the tracer for one run. The flight recorder is **always**
/// attached — its fixed-memory rings are the forensic context when an
/// anomaly fires — so the tracer is never disabled on the CLI path; a
/// full-capture [`MemorySink`] is teed in when either trace flag asks
/// for it.
fn make_tracer(opts: &CliOptions) -> (Tracer, Option<Arc<MemorySink>>, Arc<FlightRecorder>) {
    let flight_rec = Arc::new(FlightRecorder::with_default_capacity());
    if opts.trace.is_some() || opts.trace_summary {
        let sink = Arc::new(MemorySink::new());
        let tee: Vec<Arc<dyn TraceSink>> = vec![flight_rec.clone(), sink.clone()];
        (
            Tracer::new(Arc::new(FanoutSink::new(tee))),
            Some(sink),
            flight_rec,
        )
    } else {
        (Tracer::new(flight_rec.clone()), None, flight_rec)
    }
}

/// Reports detected anomalies and, when `--flight-dir` is set, drains
/// the flight recorder into a forensic bundle. Flight accounting lands
/// in the wall domain (capture order is host scheduling).
fn finish_flight(
    out: &mut String,
    opts: &CliOptions,
    anomalies: Vec<Anomaly>,
    flight_rec: &FlightRecorder,
    metrics: &Metrics,
    source: &str,
    raw_inputs: &[(String, String)],
) -> Result<(), Box<dyn Error>> {
    use std::fmt::Write as _;

    if metrics.enabled() {
        metrics.add(
            Domain::Wall,
            metric_names::FLIGHT_EVENTS,
            &[],
            flight_rec.captured(),
        );
        metrics.add(
            Domain::Wall,
            metric_names::FLIGHT_EVICTED,
            &[],
            flight_rec.evicted(),
        );
        for a in &anomalies {
            let label = [("kind", crate::metrics::LabelValue::from(a.kind.name()))];
            metrics.add(Domain::Wall, metric_names::FLIGHT_ANOMALIES, &label, 1);
        }
    }
    if anomalies.is_empty() {
        return Ok(());
    }
    let _ = writeln!(out, "\nanomalies detected:");
    for a in &anomalies {
        let _ = writeln!(out, "  {}: {}", a.kind, a.detail);
    }
    let Some(dir) = &opts.flight_dir else {
        return Ok(());
    };
    let snapshot = metrics.enabled().then(|| metrics.snapshot());
    let spec = BundleSpec {
        anomalies: &anomalies,
        script: source,
        inputs: raw_inputs,
        seed: opts.seed,
        events: &flight_rec.drain(),
        snapshot: snapshot.as_ref(),
        repro: flight::repro_command(opts),
        context: bundle_context(opts),
    };
    let name = format!("bundle-seed{}", opts.seed);
    let path = flight::write_bundle(Path::new(dir), &name, &spec)?;
    if metrics.enabled() {
        metrics.add(Domain::Wall, metric_names::FLIGHT_BUNDLES, &[], 1);
    }
    let _ = writeln!(out, "forensic bundle: {}", path.display());
    Ok(())
}

/// Host-side manifest context for a CLI bundle.
fn bundle_context(opts: &CliOptions) -> Vec<(String, String)> {
    let mode = match opts.threads {
        Some(n) => format!("parallel({n} threads)"),
        None => "sequential".to_owned(),
    };
    vec![
        ("mode".to_owned(), mode),
        (
            "compute_threads".to_owned(),
            opts.compute_threads
                .map_or("inline".to_owned(), |n| n.to_string()),
        ),
        ("verify_mode".to_owned(), opts.verify_mode.name().to_owned()),
    ]
}

/// Drains the sink: writes the Chrome-trace JSON file (`--trace`) and
/// appends the aggregated summary (`--trace-summary`) to the report.
fn finish_trace(
    out: &mut String,
    opts: &CliOptions,
    sink: Option<Arc<MemorySink>>,
    dp_before: DataPlaneSnapshot,
) -> Result<(), Box<dyn Error>> {
    use std::fmt::Write as _;

    let Some(sink) = sink else { return Ok(()) };
    let events = sink.take();
    if let Some(path) = &opts.trace {
        flight::write_output("--trace", path, &chrome_trace_json(&events))?;
    }
    if opts.trace_summary {
        let delta = data_plane::snapshot().since(&dp_before);
        let summary = TraceSummary::from_events(&events)
            .with_counter("records_cloned", delta.records_cloned)
            .with_counter("arcs_shared", delta.arcs_shared)
            .with_counter("bytes_encoded", delta.bytes_encoded)
            .with_counter("digest_bytes_hashed", delta.digest_bytes_hashed)
            .with_counter("tasks_dispatched", delta.tasks_dispatched)
            .with_counter("tasks_stolen", delta.tasks_stolen)
            .with_counter("pool_queue_peak", delta.pool_queue_peak);
        let _ = writeln!(out, "\n{}", summary.render());
    }
    Ok(())
}

/// The `--threads` path: replicas run on worker threads in isolated
/// clusters, digests stream into the verifier live, and faults target
/// replicas rather than nodes.
fn run_parallel(
    opts: &CliOptions,
    source: &str,
    inputs: HashMap<String, Vec<Record>>,
    raw_inputs: &[(String, String)],
) -> Result<String, Box<dyn Error>> {
    use std::fmt::Write as _;

    let (tracer, sink, flight_rec) = make_tracer(opts);
    let metrics = make_metrics(opts);
    let dp_before = data_plane::snapshot();

    let f = opts.f;
    let default_exec = ExecutorConfig::default();
    let mut exec = ParallelExecutor::new(ExecutorConfig {
        threads: opts.threads.unwrap_or(1),
        compute_threads: opts.compute_threads.unwrap_or(default_exec.compute_threads),
        batch_records: opts.batch_size.unwrap_or(default_exec.batch_records),
        expected_failures: f,
        // Start at the requested replication degree, escalate along the
        // paper's schedule from there.
        escalation: vec![opts.replication.replicas(f), 2 * f + 1, 3 * f + 1],
        vp_policy: VpPolicy::Marked(opts.points),
        adversary: opts.adversary,
        digest_granularity: opts.granularity,
        nodes: opts.nodes,
        slots_per_node: opts.slots,
        master_seed: opts.seed,
        verify_mode: opts.verify_mode,
        sample_rate: opts.sample_rate.unwrap_or(default_exec.sample_rate),
        ..ExecutorConfig::default()
    });
    exec.set_tracer(tracer);
    exec.set_metrics(metrics.clone());
    for (name, records) in inputs {
        exec.load_input(&name, records)?;
    }
    for &(uid, behavior) in &opts.faults {
        exec.inject_fault(uid, behavior);
    }
    let plan = Script::parse(source)?.into_plan();
    let plan = if opts.optimize {
        crate::dataflow::optimize::optimize(&plan)
    } else {
        plan
    };
    let outcome = exec.run_plan(plan)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}   replicas per round: {:?}   digest reports: {}",
        if outcome.verified() {
            "VERIFIED"
        } else {
            "NOT VERIFIED"
        },
        outcome.replicas_per_round(),
        outcome.transcript().len(),
    );
    if outcome.verify_mode() != VerifyMode::Replicate {
        let re = outcome.reexec();
        let _ = writeln!(
            out,
            "verify mode: {}   spot checks: sampled={} rerun={} confirmed={} mismatched={}{}",
            outcome.verify_mode().name(),
            re.sampled,
            re.reexecuted,
            re.confirmed,
            re.mismatched,
            if re.escalated {
                "   escalated to replication"
            } else {
                ""
            },
        );
        if !outcome.verified() {
            // A withheld output is one copy-paste from re-execution:
            // the command pins seed, verify mode, sample rate, threads.
            let _ = writeln!(out, "repro: {}", flight::repro_command(opts));
        }
    }
    if !outcome.deviant_replicas().is_empty() {
        let _ = writeln!(out, "deviant replicas: {:?}", outcome.deviant_replicas());
    }
    if !outcome.omitted_replicas().is_empty() {
        let _ = writeln!(out, "omitted replicas: {:?}", outcome.omitted_replicas());
    }
    for (name, records) in outcome.outputs() {
        let _ = writeln!(out, "\n== {name} ({} records) ==", records.len());
        for r in records.iter().take(opts.show_rows) {
            let _ = writeln!(out, "{}", render_record(r));
        }
        if records.len() > opts.show_rows {
            let _ = writeln!(out, "... ({} more)", records.len() - opts.show_rows);
        }
    }
    let snapshot: Option<Snapshot> = metrics.enabled().then(|| metrics.snapshot());
    let anomalies = flight::detect_parallel_anomalies(&outcome, snapshot.as_ref());
    finish_flight(
        &mut out,
        opts,
        anomalies,
        &flight_rec,
        &metrics,
        source,
        raw_inputs,
    )?;
    finish_trace(&mut out, opts, sink, dp_before)?;
    finish_metrics(&mut out, opts, &metrics)?;
    Ok(out)
}

/// Builds the metrics hub for one run: a live registry when any metrics
/// flag is set — `--flight-dir` counts, so forensic bundles always embed
/// a snapshot — the zero-cost disabled handle otherwise.
fn make_metrics(opts: &CliOptions) -> Metrics {
    if opts.metrics.is_some()
        || opts.metrics_json.is_some()
        || opts.health_report
        || opts.flight_dir.is_some()
    {
        Metrics::new()
    } else {
        Metrics::disabled()
    }
}

/// Drains the metrics hub: writes the Prometheus (`--metrics`) and JSON
/// (`--metrics-json`) dumps and appends the fault-forensics health report
/// (`--health-report`) to the run report.
fn finish_metrics(
    out: &mut String,
    opts: &CliOptions,
    metrics: &Metrics,
) -> Result<(), Box<dyn Error>> {
    use std::fmt::Write as _;

    if !metrics.enabled() {
        return Ok(());
    }
    let snap = metrics.snapshot();
    if let Some(path) = &opts.metrics {
        flight::write_output("--metrics", path, &prometheus_text(&snap))?;
    }
    if let Some(path) = &opts.metrics_json {
        flight::write_output("--metrics-json", path, &json_snapshot(&snap))?;
    }
    if opts.health_report {
        // Built from the sim-domain slice only, so the report is identical
        // for any worker/compute-pool thread count.
        let report = HealthReport::from_snapshot(&snap.sim_only());
        let _ = writeln!(out, "\n{}", report.render());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, UsageError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_a_full_invocation() {
        let opts = parse(&[
            "job.pig",
            "--input",
            "edges=edges.csv",
            "--nodes",
            "32",
            "--f",
            "2",
            "--replication",
            "quorum",
            "--points",
            "3",
            "--adversary",
            "weak",
            "--fault",
            "4:commission:0.5",
            "--fault",
            "7:crash",
            "--combiners",
            "--show",
            "5",
        ])
        .unwrap();
        assert_eq!(opts.script, "job.pig");
        assert_eq!(
            opts.inputs,
            vec![("edges".to_owned(), "edges.csv".to_owned())]
        );
        assert_eq!(opts.nodes, 32);
        assert_eq!(opts.f, 2);
        assert_eq!(opts.replication, Replication::Quorum);
        assert_eq!(opts.points, 3);
        assert_eq!(opts.adversary, Adversary::Weak);
        assert_eq!(opts.faults.len(), 2);
        assert_eq!(
            opts.faults[0],
            (4, Behavior::Commission { probability: 0.5 })
        );
        assert_eq!(opts.faults[1], (7, Behavior::Crashed));
        assert!(opts.combiners);
        assert_eq!(opts.show_rows, 5);
    }

    #[test]
    fn exact_replication_parses_from_integer() {
        let opts = parse(&["s.pig", "--replication", "5"]).unwrap();
        assert_eq!(opts.replication, Replication::Exact(5));
    }

    #[test]
    fn missing_script_is_an_error() {
        let err = parse(&["--nodes", "4"]).unwrap_err();
        assert!(err.0.contains("missing script"));
    }

    #[test]
    fn bad_arguments_are_reported() {
        assert!(parse(&["s.pig", "--nodes"]).is_err());
        assert!(parse(&["s.pig", "--nodes", "four"]).is_err());
        assert!(parse(&["s.pig", "--wat"]).is_err());
        assert!(parse(&["s.pig", "--fault", "3"]).is_err());
        assert!(parse(&["s.pig", "--fault", "3:meteor"]).is_err());
        assert!(parse(&["s.pig", "--input", "justname"]).is_err());
        assert!(parse(&["s.pig", "--adversary", "medium"]).is_err());
    }

    #[test]
    fn record_parsing_round_trips() {
        let r = parse_record("3, hello ,null,-42");
        assert_eq!(
            r.fields(),
            &[
                Value::Int(3),
                Value::str("hello"),
                Value::Null,
                Value::Int(-42)
            ]
        );
        assert_eq!(render_record(&r), "3,hello,null,-42");
    }

    #[test]
    fn end_to_end_run_from_files() {
        let dir = std::env::temp_dir().join(format!("cbft_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();

        // Explicit --seed: immune to CBFT_SEED set by the seed-resolution
        // test running in a sibling thread.
        let opts = parse(&[
            script.to_str().unwrap(),
            "--input",
            &format!("edges={}", data.to_str().unwrap()),
            "--fault",
            "2:commission",
            "--seed",
            "1",
        ])
        .unwrap();
        let report = run(&opts).unwrap();
        assert!(report.contains("VERIFIED"), "{report}");
        assert!(report.contains("== counts (5 records) =="), "{report}");
        assert!(
            report.contains("0,10"),
            "each user has 10 followers: {report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_parses() {
        assert_eq!(parse(&["s.pig"]).unwrap().threads, None);
        assert_eq!(
            parse(&["s.pig", "--threads", "4"]).unwrap().threads,
            Some(4)
        );
        assert_eq!(
            parse(&["s.pig", "--threads", "0"]).unwrap().threads,
            Some(0)
        );
        assert!(parse(&["s.pig", "--threads"]).is_err());
        assert!(parse(&["s.pig", "--threads", "many"]).is_err());
    }

    #[test]
    fn compute_threads_flag_parses() {
        assert_eq!(parse(&["s.pig"]).unwrap().compute_threads, None);
        assert_eq!(
            parse(&["s.pig", "--compute-threads", "8"])
                .unwrap()
                .compute_threads,
            Some(8)
        );
        assert_eq!(
            parse(&["s.pig", "--compute-threads", "0"])
                .unwrap()
                .compute_threads,
            Some(0)
        );
        assert!(parse(&["s.pig", "--compute-threads"]).is_err());
        assert!(parse(&["s.pig", "--compute-threads", "lots"]).is_err());
    }

    #[test]
    fn batch_size_flag_parses() {
        assert_eq!(parse(&["s.pig"]).unwrap().batch_size, None);
        assert_eq!(
            parse(&["s.pig", "--batch-size", "256"]).unwrap().batch_size,
            Some(256)
        );
        assert_eq!(
            parse(&["s.pig", "--batch-size", "0"]).unwrap().batch_size,
            Some(0),
            "0 selects the row-at-a-time path"
        );
        assert!(parse(&["s.pig", "--batch-size"]).is_err());
        assert!(parse(&["s.pig", "--batch-size", "wide"]).is_err());
    }

    #[test]
    fn compute_threads_run_matches_inline_report() {
        let dir = std::env::temp_dir().join(format!("cbft_cli_pool_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();

        let base = vec![
            script.to_str().unwrap().to_owned(),
            "--input".to_owned(),
            format!("edges={}", data.to_str().unwrap()),
            "--seed".to_owned(),
            "1".to_owned(),
        ];
        let inline = run(&parse_args(base.clone()).unwrap()).unwrap();
        let mut pooled_args = base;
        pooled_args.extend(["--compute-threads".to_owned(), "4".to_owned()]);
        let pooled = run(&parse_args(pooled_args).unwrap()).unwrap();
        assert!(inline.contains("VERIFIED"), "{inline}");
        assert_eq!(inline, pooled, "pool size must not change the report");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_parallel_run_from_files() {
        let dir = std::env::temp_dir().join(format!("cbft_cli_par_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();

        // --fault targets replica 0 here: the deviant replica forces an
        // escalation round, and the run still verifies.
        let opts = parse(&[
            script.to_str().unwrap(),
            "--input",
            &format!("edges={}", data.to_str().unwrap()),
            "--threads",
            "2",
            "--replication",
            "optimistic",
            "--fault",
            "0:commission",
            "--seed",
            "1",
        ])
        .unwrap();
        let report = run(&opts).unwrap();
        assert!(report.starts_with("VERIFIED"), "{report}");
        assert!(report.contains("replicas per round: [2, 1]"), "{report}");
        assert!(report.contains("deviant replicas: {0}"), "{report}");
        assert!(report.contains("== counts (5 records) =="), "{report}");
        assert!(
            report.contains("0,10"),
            "each user has 10 followers: {report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_mode_flags_parse_and_validate() {
        assert_eq!(
            parse(&["s.pig"]).unwrap().verify_mode,
            VerifyMode::Replicate
        );
        assert_eq!(parse(&["s.pig"]).unwrap().sample_rate, None);
        let opts = parse(&[
            "s.pig",
            "--threads",
            "2",
            "--verify-mode",
            "hybrid",
            "--sample-rate",
            "0.25",
        ])
        .unwrap();
        assert_eq!(opts.verify_mode, VerifyMode::Hybrid);
        assert_eq!(opts.sample_rate, Some(0.25));
        assert_eq!(
            parse(&["s.pig", "--threads", "2", "--verify-mode", "sample"])
                .unwrap()
                .verify_mode,
            VerifyMode::Sample
        );
        // replicate never needs --threads.
        assert!(parse(&["s.pig", "--verify-mode", "replicate"]).is_ok());

        let err = parse(&["s.pig", "--verify-mode", "sample"]).unwrap_err();
        assert!(err.0.contains("add --threads"), "{err}");
        let err = parse(&["s.pig", "--verify-mode", "spotty"]).unwrap_err();
        assert!(err.0.contains("replicate|sample|hybrid"), "{err}");
        let err = parse(&["s.pig", "--sample-rate", "1.5"]).unwrap_err();
        assert!(err.0.contains("within [0, 1]"), "{err}");
        let err = parse(&["s.pig", "--sample-rate", "-0.1"]).unwrap_err();
        assert!(err.0.contains("within [0, 1]"), "{err}");
        assert!(parse(&["s.pig", "--sample-rate", "lots"]).is_err());
    }

    #[test]
    fn end_to_end_sample_mode_run_from_files() {
        let dir = std::env::temp_dir().join(format!("cbft_cli_sample_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();

        let opts = parse(&[
            script.to_str().unwrap(),
            "--input",
            &format!("edges={}", data.to_str().unwrap()),
            "--threads",
            "2",
            "--verify-mode",
            "sample",
            "--sample-rate",
            "1.0",
            "--health-report",
            "--seed",
            "1",
        ])
        .unwrap();
        let report = run(&opts).unwrap();
        assert!(report.starts_with("VERIFIED"), "{report}");
        assert!(report.contains("replicas per round: [1]"), "{report}");
        assert!(report.contains("verify mode: sample"), "{report}");
        assert!(report.contains("mismatched=0"), "{report}");
        assert!(!report.contains("escalated"), "clean run never escalates");
        assert!(report.contains("== counts (5 records) =="), "{report}");
        assert!(
            report.contains("verification tier (sampled partial re-execution):"),
            "{report}"
        );
        assert!(report.contains("mode=sample"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_flags_parse() {
        assert_eq!(parse(&["s.pig"]).unwrap().trace, None);
        assert!(!parse(&["s.pig"]).unwrap().trace_summary);
        let opts = parse(&["s.pig", "--trace", "out.json", "--trace-summary"]).unwrap();
        assert_eq!(opts.trace.as_deref(), Some("out.json"));
        assert!(opts.trace_summary);
        assert!(parse(&["s.pig", "--trace"]).is_err());
    }

    #[test]
    fn trace_run_writes_chrome_json_and_summary() {
        let dir = std::env::temp_dir().join(format!("cbft_cli_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();
        let trace_file = dir.join("trace.json");

        for threads in [None, Some("2")] {
            let mut args = vec![
                script.to_str().unwrap().to_owned(),
                "--input".to_owned(),
                format!("edges={}", data.to_str().unwrap()),
                "--trace".to_owned(),
                trace_file.to_str().unwrap().to_owned(),
                "--trace-summary".to_owned(),
                "--seed".to_owned(),
                "1".to_owned(),
            ];
            if let Some(t) = threads {
                args.push("--threads".to_owned());
                args.push(t.to_owned());
            }
            let opts = parse_args(args).unwrap();
            let report = run(&opts).unwrap();
            assert!(report.contains("VERIFIED"), "{report}");
            assert!(report.contains("verification lag"), "{report}");
            assert!(report.contains("digest_bytes_hashed"), "{report}");

            let json = std::fs::read_to_string(&trace_file).unwrap();
            assert!(json.starts_with("{\"traceEvents\":["), "{json}");
            assert!(json.contains("\"ph\":\"B\""), "spans recorded: {json}");
            assert!(json.contains("\"name\":\"quorum\""), "{json}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_flags_parse() {
        let defaults = parse(&["s.pig"]).unwrap();
        assert_eq!(defaults.metrics, None);
        assert_eq!(defaults.metrics_json, None);
        assert!(!defaults.health_report);
        let opts = parse(&[
            "s.pig",
            "--metrics",
            "m.prom",
            "--metrics-json",
            "m.json",
            "--health-report",
        ])
        .unwrap();
        assert_eq!(opts.metrics.as_deref(), Some("m.prom"));
        assert_eq!(opts.metrics_json.as_deref(), Some("m.json"));
        assert!(opts.health_report);
        assert!(parse(&["s.pig", "--metrics"]).is_err());
        assert!(parse(&["s.pig", "--metrics-json"]).is_err());
    }

    #[test]
    fn metrics_run_writes_exports_and_health_report() {
        let dir = std::env::temp_dir().join(format!("cbft_cli_metrics_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();
        let prom_file = dir.join("m.prom");
        let json_file = dir.join("m.json");

        // Chaos run: replica 0 commits commission faults, so the health
        // report must name it with nonzero mismatch counters.
        let opts = parse(&[
            script.to_str().unwrap(),
            "--input",
            &format!("edges={}", data.to_str().unwrap()),
            "--threads",
            "2",
            "--replication",
            "optimistic",
            "--fault",
            "0:commission",
            "--metrics",
            prom_file.to_str().unwrap(),
            "--metrics-json",
            json_file.to_str().unwrap(),
            "--health-report",
            "--seed",
            "1",
        ])
        .unwrap();
        let report = run(&opts).unwrap();
        assert!(report.contains("VERIFIED"), "{report}");
        assert!(report.contains("health report"), "{report}");
        assert!(report.contains("replica 0:"), "{report}");
        assert!(report.contains("[SUSPECT]"), "{report}");
        assert!(
            report.contains("suspected faulty replicas: {0}"),
            "{report}"
        );

        let prom = std::fs::read_to_string(&prom_file).unwrap();
        crate::metrics::validate_prometheus_text(&prom)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{prom}"));
        assert!(prom.contains("cbft_replica_mismatches_total"), "{prom}");
        let json = std::fs::read_to_string(&json_file).unwrap();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("cbft_task_sim_us"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The whole seed-resolution story in one test function: precedence
    /// (flag > CBFT_SEED > default) and the round trip that an
    /// env-seeded run equals a flag-seeded run on both execution paths.
    /// Kept as a single `#[test]` because it mutates process-global
    /// environment state — splitting it would race under the parallel
    /// test harness.
    #[test]
    fn seed_resolution_precedence_and_round_trip() {
        // Precedence, via resolve_seed directly.
        std::env::remove_var("CBFT_SEED");
        assert_eq!(resolve_seed(None).unwrap(), 1, "default");
        assert_eq!(resolve_seed(Some(9)).unwrap(), 9, "flag");
        std::env::set_var("CBFT_SEED", "7");
        assert_eq!(resolve_seed(None).unwrap(), 7, "environment");
        assert_eq!(resolve_seed(Some(9)).unwrap(), 9, "flag beats environment");
        std::env::set_var("CBFT_SEED", "not-a-seed");
        assert!(resolve_seed(None).is_err(), "invalid CBFT_SEED is an error");
        assert_eq!(resolve_seed(Some(9)).unwrap(), 9, "flag ignores bad env");
        std::env::remove_var("CBFT_SEED");

        // Precedence, via parse_args.
        assert_eq!(parse(&["s.pig"]).unwrap().seed, 1);
        assert_eq!(parse(&["s.pig", "--seed", "9"]).unwrap().seed, 9);
        std::env::set_var("CBFT_SEED", "7");
        assert_eq!(parse(&["s.pig"]).unwrap().seed, 7);
        assert_eq!(parse(&["s.pig", "--seed", "9"]).unwrap().seed, 9);
        std::env::remove_var("CBFT_SEED");

        // Round trip: an env-seeded run is byte-identical to the same
        // run seeded by flag, on the sequential and --threads paths.
        let dir = std::env::temp_dir().join(format!("cbft_cli_seed_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();

        for extra in [&[][..], &["--threads", "2"][..]] {
            let mut flag_args = vec![
                script.to_str().unwrap().to_owned(),
                "--input".to_owned(),
                format!("edges={}", data.to_str().unwrap()),
                "--seed".to_owned(),
                "7".to_owned(),
            ];
            flag_args.extend(extra.iter().map(|s| (*s).to_owned()));
            let flag_report = run(&parse_args(flag_args.clone()).unwrap()).unwrap();

            std::env::set_var("CBFT_SEED", "7");
            let env_args: Vec<String> = flag_args
                .iter()
                .filter(|a| *a != "--seed" && *a != "7")
                .cloned()
                .collect();
            let env_opts = parse_args(env_args).unwrap();
            std::env::remove_var("CBFT_SEED");
            assert_eq!(env_opts.seed, 7);
            let env_report = run(&env_opts).unwrap();
            assert_eq!(
                flag_report, env_report,
                "CBFT_SEED and --seed runs must match (extra: {extra:?})"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_valued_flags_are_rejected_at_parse_time() {
        for (args, needle) in [
            (&["s.pig", "--nodes", "0"][..], "--nodes must be at least 1"),
            (&["s.pig", "--slots", "0"][..], "--slots must be at least 1"),
            (
                &["s.pig", "--granularity", "0"][..],
                "--granularity must be at least 1",
            ),
            (
                &["s.pig", "--replication", "0"][..],
                "--replication must be at least 1",
            ),
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.0.contains(needle), "{args:?}: {err}");
        }
        // --threads 0 stays valid: the documented one-thread-per-replica
        // mode, pinned separately by threads_flag_parses. Likewise
        // --compute-threads 0 (one per host core) and --f 0.
        assert_eq!(
            parse(&["s.pig", "--threads", "0"]).unwrap().threads,
            Some(0)
        );
    }

    #[test]
    fn huge_batch_size_is_rejected_but_zero_stays_the_row_path() {
        assert_eq!(
            parse(&["s.pig", "--batch-size", "0"]).unwrap().batch_size,
            Some(0)
        );
        let err = parse(&["s.pig", "--batch-size", "18446744073709551615"]).unwrap_err();
        assert!(err.0.contains("unreasonably large"), "{err}");
        assert!(err.0.contains("use 0 for row-at-a-time"), "{err}");
    }

    #[test]
    fn missing_files_are_reported_with_their_paths() {
        let opts = parse(&["definitely_missing_script.pig"]).unwrap();
        let err = run(&opts).unwrap_err().to_string();
        assert!(
            err.contains("cannot read script 'definitely_missing_script.pig'"),
            "{err}"
        );

        let dir = std::env::temp_dir().join(format!("cbft_cli_noinput_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(&script, "a = LOAD 'edges' AS (u); STORE a INTO 'o';").unwrap();
        let opts = parse(&[
            script.to_str().unwrap(),
            "--input",
            "edges=definitely_missing_data.csv",
        ])
        .unwrap();
        let err = run(&opts).unwrap_err().to_string();
        assert!(
            err.contains("cannot read input 'edges' from 'definitely_missing_data.csv'"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_run_health_report_omits_mismatch_localization() {
        let dir = std::env::temp_dir().join(format!("cbft_cli_clean_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(
            &script,
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n;
             STORE c INTO 'counts';",
        )
        .unwrap();
        let data = dir.join("edges.csv");
        let lines: Vec<String> = (0..50).map(|i| format!("{},{}", i % 5, i)).collect();
        std::fs::write(&data, lines.join("\n")).unwrap();

        // No faults: every replica agrees, so the health report must omit
        // the mismatch-localization section entirely rather than render
        // an empty or garbled one.
        let opts = parse(&[
            script.to_str().unwrap(),
            "--input",
            &format!("edges={}", data.to_str().unwrap()),
            "--threads",
            "2",
            "--health-report",
            "--seed",
            "1",
        ])
        .unwrap();
        let report = run(&opts).unwrap();
        assert!(report.contains("VERIFIED"), "{report}");
        assert!(report.contains("health report"), "{report}");
        assert!(!report.contains("mismatch localization"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dot_mode_emits_graphviz() {
        let dir = std::env::temp_dir().join(format!("cbft_dot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("s.pig");
        std::fs::write(&script, "a = LOAD 'x' AS (y); STORE a INTO 'o';").unwrap();
        let opts = parse(&[script.to_str().unwrap(), "--dot"]).unwrap();
        let dot = run(&opts).unwrap();
        assert!(dot.starts_with("digraph plan {"), "{dot}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
