//! Umbrella crate for the ClusterBFT reproduction workspace.
//!
//! This crate exists to host the repository-level [examples] and integration
//! tests; the actual functionality lives in the member crates, re-exported
//! here under stable names so examples can write `clusterbft_repro::...`.
//!
//! - [`digest`] — SHA-256 and chunked stream digests ([`cbft_digest`]).
//! - [`dataflow`] — Pig-Latin-like scripts, logical plans, the marker
//!   function ([`cbft_dataflow`]).
//! - [`sim`] — discrete-event simulation core ([`cbft_sim`]).
//! - [`trace`] — structured span/event tracing and the Chrome-trace
//!   exporter ([`cbft_trace`]).
//! - [`metrics`] — labeled counters/gauges/histograms, Prometheus and
//!   JSON exposition, and the fault-forensics health report
//!   ([`cbft_metrics`]).
//! - [`mapreduce`] — the Hadoop-style execution substrate
//!   ([`cbft_mapreduce`]).
//! - [`bft`] — PBFT-style state machine replication ([`cbft_bft`]).
//! - [`core`] — the ClusterBFT system itself ([`clusterbft`]).
//! - [`workloads`] — synthetic data generators and the paper's analysis
//!   scripts ([`cbft_workloads`]).
//! - [`faultsim`] — the 250-node fault-isolation simulator of §6.3
//!   ([`cbft_faultsim`]).
//! - [`campaign`] — deterministic chaos campaigns with counterexample
//!   shrinking ([`cbft_campaign`]).
//! - [`server`] — the multi-tenant `cbftd` job server: bounded
//!   admission, weighted-fair scheduling, concurrent verified jobs
//!   ([`cbft_server`]).
//!
//! [examples]: https://github.com/rust-lang/cargo/blob/master/src/doc/src/reference/cargo-targets.md#examples

pub mod cli;
pub mod flight;
pub mod server_cli;

pub use cbft_bft as bft;
pub use cbft_campaign as campaign;
pub use cbft_dataflow as dataflow;
pub use cbft_digest as digest;
pub use cbft_faultsim as faultsim;
pub use cbft_mapreduce as mapreduce;
pub use cbft_metrics as metrics;
pub use cbft_server as server;
pub use cbft_sim as sim;
pub use cbft_trace as trace;
pub use cbft_workloads as workloads;
pub use clusterbft as core;
