//! Operations walk-through: detect a corrupting node across workloads,
//! isolate it with probe jobs, patch and readmit it (§3.3/§4.2), with
//! map-side combiners enabled throughout.
//!
//! ```sh
//! cargo run --release --example operations
//! ```

use clusterbft_repro::core::{
    Behavior, Cluster, ClusterBft, JobConfig, NodeId, Record, Replication, Value, VpPolicy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let villain = NodeId(7);
    let cluster = Cluster::builder()
        .nodes(12)
        .slots_per_node(3)
        .seed(2)
        .node_behavior(villain.0, Behavior::Commission { probability: 0.8 })
        .build();
    let mut cbft = ClusterBft::new(
        cluster,
        JobConfig::builder()
            .expected_failures(1)
            .replication(Replication::Full)
            .vp_policy(VpPolicy::marked(2))
            .combiners(true)
            .map_split_records(200)
            .build(),
    );
    let edges: Vec<Record> = (0..3_000)
        .map(|i| Record::new(vec![Value::Int(i % 17), Value::Int(i)]))
        .collect();
    cbft.load_input("edges", edges)?;

    // Phase 1: normal traffic. Everything verifies; suspicion accrues.
    for round in 0..3 {
        let outcome = cbft.submit_script(&format!(
            "a = LOAD 'edges' AS (u, f);
             g = GROUP a BY u;
             c = FOREACH g GENERATE group, COUNT(a) AS n, SUM(a.f) AS s;
             STORE c INTO 'stats{round}';"
        ))?;
        assert!(outcome.verified());
        println!(
            "round {round}: verified in {} attempt(s), {} deviant replica run(s)",
            outcome.attempts(),
            outcome.deviant_replica_runs()
        );
    }
    let suspects = cbft.fault_analyzer().expect("f=1").suspects();
    println!("suspects after traffic: {suspects:?}");

    // Phase 2: probe to a singleton.
    let report = cbft.probe_suspects(10)?;
    println!(
        "probing: {} probes, isolated {:?}, {} node(s) still suspected",
        report.probes_run, report.isolated, report.remaining_suspects
    );
    assert!(
        report.isolated.contains(&villain) || suspects.iter().any(|s| s.len() == 1),
        "the villain should be cornered"
    );

    // Phase 3: the administrator patches the node and reinserts it.
    cbft.cluster_mut()
        .set_node_behavior(villain, Behavior::Honest);
    cbft.readmit_node(villain);
    println!("node {villain} patched and readmitted");

    let outcome = cbft.submit_script(
        "a = LOAD 'edges' AS (u, f);
         g = GROUP a BY u;
         c = FOREACH g GENERATE group, MAX(a.f) AS top;
         STORE c INTO 'post_patch';",
    )?;
    assert!(outcome.verified());
    assert_eq!(outcome.attempts(), 1, "clean cluster verifies first try");
    println!("post-patch run: {outcome}");
    Ok(())
}
