//! The paper's §6.3 scenario: isolating hidden faulty nodes by
//! overlapping replicated job clusters on a 250-node cluster.
//!
//! ```sh
//! cargo run --release --example fault_isolation
//! ```

use clusterbft_repro::faultsim::{FaultSim, FaultSimConfig, JobMix};

fn main() {
    for (f, replicas) in [(1usize, 4usize), (2, 7)] {
        let mut sim = FaultSim::new(FaultSimConfig {
            f,
            replicas,
            commission_probability: 0.6,
            mix: JobMix::R1,
            length_range: (5, 15),
            seed: 11,
            ..FaultSimConfig::default()
        });
        println!(
            "f = {f}: {replicas} replicas per job, ground truth faulty nodes: {:?}",
            sim.ground_truth()
        );
        let jobs = sim
            .run_until_converged(50_000)
            .expect("commission faults at p=0.6 converge");
        println!("  |D| reached f after {jobs} completed jobs");
        sim.run_steps(100); // keep narrowing
        println!("  suspect sets: {:?}", sim.analyzer().suspects());
        println!(
            "  isolated faulty nodes: {:?}",
            sim.analyzer().isolated_faulty_nodes()
        );
        for truth in sim.ground_truth() {
            assert!(
                sim.analyzer().suspected_nodes().contains(truth),
                "ground-truth faulty node must remain suspected"
            );
        }
        let bands = sim.suspicion().band_counts();
        println!(
            "  suspicion bands: low={} med={} high={}\n",
            bands["low"], bands["med"], bands["high"]
        );
    }
}
