//! Prints, for each of the paper's evaluation scripts, the logical plan,
//! the compiled MapReduce job DAG, the per-vertex input ratios, and where
//! the marker function (Fig. 3) puts 1–3 verification points. Pipe the
//! emitted dot blocks through Graphviz to draw Fig. 8.
//!
//! ```sh
//! cargo run --release --example marker_gallery
//! ```

use std::collections::HashMap;

use clusterbft_repro::dataflow::analyze::{analyze_plan, eligible_under, mark_seeded, Adversary};
use clusterbft_repro::dataflow::compile::compile_plan;
use clusterbft_repro::dataflow::Script;
use clusterbft_repro::workloads::{airline, twitter, weather};

fn main() {
    let scripts = [
        (
            "Twitter Follower Analysis (Fig. 8 i)",
            twitter::FOLLOWER_SCRIPT,
            "twitter",
            200u64,
        ),
        (
            "Twitter Two Hop Analysis (Fig. 8 ii)",
            twitter::TWO_HOP_SCRIPT,
            "twitter",
            200,
        ),
        (
            "Air Traffic Analysis (Fig. 8 iii)",
            airline::TOP_AIRPORTS_SCRIPT,
            "airline",
            1_300,
        ),
        (
            "Weather Average Temperature (§6.4)",
            weather::AVERAGE_TEMPERATURE_SCRIPT,
            "weather",
            640,
        ),
    ];

    for (title, script, input, mb) in scripts {
        println!("==================== {title} ====================");
        let plan = Script::parse(script)
            .expect("bundled script parses")
            .into_plan();
        let sizes = HashMap::from([(input.to_owned(), mb << 20)]);
        let analysis = analyze_plan(&plan, &sizes);

        println!("-- plan (level / input ratio) --");
        for v in plan.vertices() {
            println!(
                "  {:>3} {:<8} level {}  ir {:.3}  {}",
                v.id().to_string(),
                v.op().name(),
                analysis.level(v.id()),
                analysis.input_ratio(v.id()),
                v.alias().unwrap_or("-"),
            );
        }

        let graph = compile_plan(&plan);
        println!("-- {} MapReduce job(s) --", graph.len());
        print!("{}", graph.render(&plan));

        let stores = plan.stores();
        for n in 1..=3usize {
            let marked = mark_seeded(
                &plan,
                &analysis,
                n,
                eligible_under(Adversary::Weak),
                &stores,
            );
            let names: Vec<String> = marked
                .iter()
                .map(|&v| format!("{}:{}", v, plan.vertex(v).op().name()))
                .collect();
            println!("marker n={n}: {}", names.join(", "));
        }

        println!("-- graphviz (plan, marked n=2) --");
        let marked = mark_seeded(
            &plan,
            &analysis,
            2,
            eligible_under(Adversary::Weak),
            &stores,
        );
        println!("{}", plan.to_dot(&marked));
    }
}
