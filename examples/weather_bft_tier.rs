//! The paper's §6.4 scenario: the control tier itself is BFT-replicated
//! with `cbft-bft` (the BFT-SMaRt substitute) while the weather analysis
//! runs with fine-grained digests on the untrusted tier.
//!
//! ```sh
//! cargo run --release --example weather_bft_tier
//! ```

use clusterbft_repro::bft::{BftBehavior, BftCluster, KvStore, ReplicaId};
use clusterbft_repro::core::{Cluster, ClusterBft, JobConfig, Replication, VpPolicy};
use clusterbft_repro::workloads::weather;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- control tier: 3f+1 = 4 PBFT replicas agreeing on verdicts -------
    let mut control = BftCluster::new(1, KvStore::default(), 99);
    // Even with the primary crashed, the view change keeps the tier live.
    control.set_behavior(ReplicaId(0), BftBehavior::Crashed);

    // --- data tier: the weather analysis with one digest per 100 records -
    let cluster = Cluster::builder()
        .nodes(8)
        .slots_per_node(3)
        .seed(5)
        .build();
    let config = JobConfig::builder()
        .expected_failures(1)
        .replication(Replication::Optimistic)
        .vp_policy(VpPolicy::marked(2))
        .adversary(clusterbft_repro::core::Adversary::Weak)
        .digest_granularity(100)
        .build();
    let mut cbft = ClusterBft::new(cluster, config);
    let workload = weather::average_temperature(5, 10_000);
    cbft.load_input(workload.input_name, workload.records)?;
    let outcome = cbft.submit_script(workload.script)?;
    println!("data tier: {outcome}");
    println!(
        "digest reports: {}  digest chunks: {}",
        outcome.digest_reports(),
        outcome.digest_chunks()
    );
    assert!(outcome.verified());

    // Every verification verdict is agreed upon by the replicated control
    // tier: order them through PBFT and check the group stays consistent.
    let mut verdicts = 0u32;
    for i in 0..outcome.digest_reports().min(20) {
        let req = control.submit(format!("put verdict{i} verified").into_bytes());
        let reply = control
            .run_until_reply(req)
            .expect("control tier commits despite the crashed primary");
        assert_eq!(reply, b"ok");
        verdicts += 1;
    }
    println!(
        "control tier: {verdicts} verdicts ordered, view {}, {} messages",
        control.replica(ReplicaId(1)).view(),
        control.metrics().messages
    );

    // Safety invariant: live replicas' histories are prefix-consistent
    // (a replica may lag, but never diverge).
    let reference = control.replica(ReplicaId(1)).executed_log().to_vec();
    for i in 2..4 {
        let log = control.replica(ReplicaId(i)).executed_log();
        let common = log.len().min(reference.len());
        assert_eq!(&log[..common], &reference[..common], "replica {i} diverged");
        assert!(common > 0, "replica {i} executed nothing");
    }
    println!("control tier histories prefix-consistent across live replicas ✓");
    Ok(())
}
