//! The paper's §6.1 scenario: Twitter follower analysis with verification
//! points chosen by the marker function, comparing the unreplicated
//! baseline against full BFT execution.
//!
//! ```sh
//! cargo run --release --example twitter_follower
//! ```

use clusterbft_repro::core::{Cluster, ClusterBft, JobConfig, Replication, VpPolicy};
use clusterbft_repro::workloads::twitter;

fn run(label: &str, config: JobConfig) -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::builder()
        .nodes(32)
        .slots_per_node(9)
        .seed(7)
        .build();
    let mut cbft = ClusterBft::new(cluster, config);
    let workload = twitter::follower_analysis(7, 50_000);
    cbft.load_input(workload.input_name, workload.records)?;
    let outcome = cbft.submit_script(workload.script)?;
    println!(
        "{label:<22} latency {:>8}  cpu {:>8}  verified {}",
        outcome.latency(),
        outcome.metrics().cpu_time,
        outcome.verified()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Twitter follower analysis, 50k synthetic edges, 32 nodes\n");
    run(
        "pure pig (baseline)",
        JobConfig::builder()
            .expected_failures(0)
            .replication(Replication::Exact(1))
            .vp_policy(VpPolicy::None)
            .build(),
    )?;
    run(
        "single + digests",
        JobConfig::builder()
            .expected_failures(0)
            .replication(Replication::Exact(1))
            .vp_policy(VpPolicy::marked(2))
            .build(),
    )?;
    for (label, replication) in [
        ("bft optimistic (f+1)", Replication::Optimistic),
        ("bft quorum (2f+1)", Replication::Quorum),
        ("bft full (3f+1)", Replication::Full),
    ] {
        run(
            label,
            JobConfig::builder()
                .expected_failures(1)
                .replication(replication)
                .vp_policy(VpPolicy::marked(2))
                .build(),
        )?;
    }
    Ok(())
}
