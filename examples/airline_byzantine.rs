//! The paper's §6.2 scenario: the multi-store airline query survives an
//! always-corrupting node, re-executing only the unverified suffix.
//!
//! ```sh
//! cargo run --release --example airline_byzantine
//! ```

use clusterbft_repro::core::{Behavior, Cluster, ClusterBft, JobConfig, Replication, VpPolicy};
use clusterbft_repro::dataflow::interp::interpret;
use clusterbft_repro::dataflow::Script;
use clusterbft_repro::workloads::airline;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = airline::top_airports(3, 20_000);

    // Ground truth from the single-node reference interpreter.
    let plan = Script::parse(workload.script)?.into_plan();
    let inputs = HashMap::from([(workload.input_name.to_owned(), workload.records.clone())]);
    let reference = interpret(&plan, &inputs)?;

    // Node 0 corrupts everything it touches; node 5 drops half its tasks.
    let cluster = Cluster::builder()
        .nodes(32)
        .slots_per_node(9)
        .seed(3)
        .node_behavior(0, Behavior::Commission { probability: 1.0 })
        .node_behavior(5, Behavior::Omission { probability: 0.5 })
        .build();
    let config = JobConfig::builder()
        .expected_failures(1)
        .replication(Replication::Exact(3))
        .vp_policy(VpPolicy::marked(2))
        .early_cancel(true)
        .reuse_digests(true)
        .verifier_timeout(clusterbft_repro::sim::SimDuration::from_secs(60))
        .build();
    let mut cbft = ClusterBft::new(cluster, config);
    cbft.load_input(workload.input_name, workload.records)?;

    let outcome = cbft.submit_script(workload.script)?;
    println!("{outcome}");
    println!(
        "attempts: {}  deviant replica runs: {}  omitted replica runs: {}",
        outcome.attempts(),
        outcome.deviant_replica_runs(),
        outcome.omitted_replica_runs()
    );
    assert!(outcome.verified(), "the Byzantine node must not win");

    // Despite the corruption, every published output equals the reference.
    for name in workload.outputs {
        let published = cbft.cluster().storage().peek(name).expect("published");
        let mut ours = published.to_vec();
        let mut truth = reference.output(name).expect("reference").to_vec();
        ours.sort();
        truth.sort();
        assert_eq!(ours, truth, "{name} must match the reference");
        println!(
            "output '{name}': {} records, matches reference ✓",
            ours.len()
        );
    }

    if let Some(analyzer) = cbft.fault_analyzer() {
        println!("suspect sets: {:?}", analyzer.suspects());
    }
    Ok(())
}
