//! Quickstart: run a verified data-flow script on an untrusted cluster
//! with one Byzantine node.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use clusterbft_repro::core::{
    Behavior, Cluster, ClusterBft, JobConfig, Record, Replication, Value, VpPolicy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-node untrusted tier. Node 3 corrupts every task it executes —
    // a classic commission fault.
    let cluster = Cluster::builder()
        .nodes(8)
        .slots_per_node(3)
        .seed(42)
        .node_behavior(3, Behavior::Commission { probability: 1.0 })
        .build();

    // Tolerate f = 1 fault with 3f + 1 = 4 replicas and two marker-chosen
    // verification points (plus the final outputs, always verified).
    let config = JobConfig::builder()
        .expected_failures(1)
        .replication(Replication::Full)
        .vp_policy(VpPolicy::marked(2))
        .map_split_records(200)
        .build();
    let mut cbft = ClusterBft::new(cluster, config);

    // A small follower graph: user = i % 13 gains follower i.
    let edges: Vec<Record> = (0..2_000)
        .map(|i| Record::new(vec![Value::Int(i % 13), Value::Int(i)]))
        .collect();
    cbft.load_input("edges", edges)?;

    let outcome = cbft.submit_script(
        "raw   = LOAD 'edges' AS (user, follower);
         grp   = GROUP raw BY user;
         cnt   = FOREACH grp GENERATE group AS user, COUNT(raw) AS followers;
         ranked = ORDER cnt BY followers DESC;
         top   = LIMIT ranked 5;
         STORE top INTO 'top_users';",
    )?;

    println!("{outcome}");
    assert!(outcome.verified(), "f+1 digest quorum must form");

    println!("\ntop users by follower count (verified output):");
    for record in cbft
        .cluster()
        .storage()
        .peek("top_users")
        .expect("published")
    {
        println!("  {record:?}");
    }

    println!("\nsuspicion table after the run:");
    for node in cbft.suspicion().nodes() {
        let s = cbft.suspicion().level(node);
        if s > 0.0 {
            println!("  {node}: s = {s:.2}");
        }
    }
    if let Some(analyzer) = cbft.fault_analyzer() {
        println!("fault analyzer suspects: {:?}", analyzer.suspects());
    }
    Ok(())
}
