//! JSON rendering and parsing over the vendored `serde` content tree.
//!
//! Conventions: maps with string keys become JSON objects; maps with
//! structured keys (e.g. tuple-keyed `BTreeMap`s) become arrays of
//! `[key, value]` pairs, which the `serde` facade accepts back on the
//! deserialize side. Floats render via Rust's shortest round-trip
//! formatting.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ------------------------------------------------------------- writing

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            write_seq(items.iter(), out, indent, depth, write_content);
        }
        Content::Map(entries) => {
            let string_keys = entries.iter().all(|(k, _)| matches!(k, Content::Str(_)));
            if string_keys {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_content(k, out, indent, depth + 1);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_content(v, out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            } else {
                // Structured keys: render as [[key, value], …].
                write_seq(
                    entries.iter(),
                    out,
                    indent,
                    depth,
                    |(k, v), out, indent, depth| {
                        out.push('[');
                        write_content(k, out, indent, depth);
                        out.push(',');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        write_content(v, out, indent, depth);
                        out.push(']');
                    },
                );
            }
        }
    }
}

fn write_seq<I, F>(items: I, out: &mut String, indent: Option<usize>, depth: usize, mut write: F)
where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, Option<usize>, usize),
{
    if items.len() == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write(item, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_nan() || v.is_infinite() {
        // JSON has no representation for these; upstream serde_json
        // writes null.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep a trailing ".0" so the value parses back as a float.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&v.to_string());
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_basic_values() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let json = super::to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        let back: Vec<Option<u64>> = super::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_objects_with_escapes() {
        let json = r#"{"name": "a\nb", "xs": [1.5, -2, 3e2], "flag": true}"#;
        let content: std::collections::BTreeMap<String, serde::Content> =
            super::from_str(json).unwrap();
        assert_eq!(content["name"], serde::Content::Str("a\nb".into()));
        assert_eq!(
            content["xs"],
            serde::Content::Seq(vec![
                serde::Content::F64(1.5),
                serde::Content::I64(-2),
                serde::Content::F64(300.0),
            ])
        );
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let json = super::to_string(&vec![1.0f64, 2.25]).unwrap();
        assert_eq!(json, "[1.0,2.25]");
        let back: Vec<f64> = super::from_str(&json).unwrap();
        assert_eq!(back, vec![1.0, 2.25]);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), vec![1u64, 2]);
        let pretty = super::to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n"));
        let back: std::collections::BTreeMap<String, Vec<u64>> = super::from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }
}
