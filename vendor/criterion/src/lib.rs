//! A lightweight stand-in for criterion 0.5: same macro and builder
//! surface, but a simple median-of-samples timer instead of the full
//! statistical machinery. Good enough to run `cargo bench` offline and
//! eyeball relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_count, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_count, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_count, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples + 1),
    };
    // One warm-up, then the measured samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    println!(
        "bench {label:<50} median {median:>12?}  ({} samples, total {total:?})",
        bencher.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
