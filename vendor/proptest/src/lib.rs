//! A compact property-testing framework exposing the subset of the
//! `proptest` 1.x API this workspace uses. Differences from upstream:
//! no shrinking (failures report the generated inputs via `Debug`
//! instead), and checked-in `.proptest-regressions` seeds are replayed
//! as deterministic extra cases (hashed to seeds) rather than replaying
//! upstream's byte-exact value trees.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;
pub mod string;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Random source handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.0.gen_range(0..self.0.len());
        self.0[pick].generate(rng)
    }
}

// -------------------------------------------------------- any / Arbitrary

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i32, i64, bool, f64);

// ------------------------------------------------------ range strategies

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ------------------------------------------------------ tuple strategies

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

// ------------------------------------------------------------ the runner

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property: replays any checked-in regression seeds for the
/// enclosing file, then runs `config.cases` fresh cases seeded from the
/// test name (deterministic run to run).
pub fn run_property<F>(config: &ProptestConfig, source_file: &str, test_name: &str, body: F)
where
    F: Fn(u64),
{
    let mut seeds: Vec<(String, u64)> = Vec::new();
    for token in regression_tokens(source_file) {
        seeds.push((format!("regression {token}"), fnv1a(token.as_bytes())));
    }
    let base = fnv1a(test_name.as_bytes());
    for case in 0..config.cases {
        seeds.push((
            format!("case {case}"),
            base.wrapping_add(splitmix(case as u64)),
        ));
    }

    for (label, seed) in seeds {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(seed)));
        if let Err(payload) = result {
            eprintln!("proptest: {test_name} failed on {label} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// `cc <hex>` tokens from the file's sibling `.proptest-regressions`.
fn regression_tokens(source_file: &str) -> Vec<String> {
    let path = std::path::Path::new(source_file).with_extension("proptest-regressions");
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            line.strip_prefix("cc ")
                .map(|rest| rest.split_whitespace().next().unwrap_or("").to_string())
        })
        .filter(|t| !t.is_empty())
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// --------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(&config, file!(), stringify!($name), |seed| {
                let mut rng = $crate::TestRng::from_seed(seed);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps_compose(
            x in 0u64..100,
            label in "[a-z]{0,8}",
            pair in (0i64..5, any::<bool>()),
            xs in crate::collection::vec(any::<u8>(), 1..10),
        ) {
            prop_assert!(x < 100);
            prop_assert!(label.len() <= 8);
            prop_assert!(label.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((0..5).contains(&pair.0));
            prop_assert!(!xs.is_empty() && xs.len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn oneof_and_sets_work(
            v in prop_oneof![Just(0u64), 1u64..10, Just(99u64)],
            s in crate::collection::btree_set(0usize..30, 2..6),
        ) {
            prop_assert!(v == 0 || v == 99 || (1..10).contains(&v));
            prop_assert!(s.len() >= 2 && s.len() < 6);
        }
    }

    #[test]
    fn index_is_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..100 {
            let idx = crate::sample::Index::arbitrary(&mut rng);
            assert!(idx.index(13) < 13);
        }
    }

    use crate::Arbitrary;
}
