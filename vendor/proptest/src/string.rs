//! A tiny regex-shaped string generator. Supports the pattern subset
//! used as strategies in this workspace: literal characters, character
//! classes `[a-z0-9_]` (ranges and singletons), and the repetition
//! operators `{m,n}`, `{n}`, `?`, `*`, `+` (star/plus capped at 8).

use crate::TestRng;
use rand::Rng as _;

enum Unit {
    Class(Vec<(char, char)>),
    Literal(char),
}

struct Piece {
    unit: Unit,
    min: usize,
    max: usize,
}

pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.0.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.unit {
                Unit::Literal(c) => out.push(*c),
                Unit::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                        .sum();
                    let mut pick = rng.0.gen_range(0..total);
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(*lo as u32 + pick).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let unit = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Unit::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Unit::Literal(c)
            }
            c => {
                i += 1;
                Unit::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition bound"),
                        hi.trim().parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { unit, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    #[test]
    fn generates_matching_strings() {
        let mut rng = crate::TestRng::from_seed(11);
        for _ in 0..200 {
            let s = super::generate_matching("[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let t = super::generate_matching("ab[0-9]c?", &mut rng);
        assert!(t.starts_with("ab"));
    }
}
