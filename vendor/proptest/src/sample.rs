//! Sampling helpers (`proptest::sample::Index`).

use crate::{Arbitrary, TestRng};
use rand::Rng as _;

/// An index into a collection whose length is only known at use-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Project onto `0..len`. Panics if `len == 0`, like upstream.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.0.gen())
    }
}
