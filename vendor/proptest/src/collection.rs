//! Collection strategies: `vec` and `btree_set`.

use crate::{Strategy, TestRng};
use rand::Rng as _;
use std::collections::BTreeSet;
use std::ops::Range;

pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    assert!(!sizes.is_empty(), "vec strategy: empty size range");
    VecStrategy { element, sizes }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.0.gen_range(self.sizes.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

pub fn btree_set<S>(element: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(!sizes.is_empty(), "btree_set strategy: empty size range");
    BTreeSetStrategy { element, sizes }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.0.gen_range(self.sizes.clone());
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set; bound the retries in case the
        // element domain is smaller than the requested size.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(100) + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
