//! Minimal, dependency-free re-implementation of the subset of the `rand`
//! 0.8 API this workspace uses. Deterministic across platforms: `StdRng`
//! is a small splitmix64-seeded xoshiro256** generator, so seeded streams
//! are stable forever (the real `rand` makes no such promise across
//! versions, which matters for our replayable simulations).

pub mod rngs;
pub mod seq;

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Core source of randomness: 32/64-bit outputs plus byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformSample,
        R: IntoRangeBounds<T>,
    {
        let (lo, hi_inclusive) = range.into_bounds();
        T::sample_range(self, lo, hi_inclusive)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        debug_assert!(denominator > 0 && numerator <= denominator);
        u32::sample_range(self, 0, denominator - 1) < numerator
    }

    fn fill<T: AsMut<[u8]>>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        self.fill_bytes(dest.as_mut());
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the uniform "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}
impl Standard for i32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable over a (lo, hi-inclusive) span.
pub trait UniformSample: PartialOrd + Copy {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
                assert!(lo <= hi_inclusive, "gen_range: empty range");
                let span = (hi_inclusive as $wide).wrapping_sub(lo as $wide);
                if span == <$wide>::MAX {
                    return rng.next_u64() as $t;
                }
                // Debiased via 128-bit multiply-shift (Lemire).
                let span = span + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                lo.wrapping_add(hi as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl UniformSample for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        assert!(lo <= hi_inclusive, "gen_range: empty range");
        lo + f64::sample(rng) * (hi_inclusive - lo)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self {
        assert!(lo <= hi_inclusive, "gen_range: empty range");
        lo + f32::sample(rng) * (hi_inclusive - lo)
    }
}

/// Range-argument adapter so `gen_range(a..b)` and `gen_range(a..=b)`
/// both work, mirroring rand 0.8's `SampleRange`.
pub trait IntoRangeBounds<T> {
    /// Returns (low, high-inclusive).
    fn into_bounds(self) -> (T, T);
}

macro_rules! range_bounds_int {
    ($($t:ty),* $(,)?) => {$(
        impl IntoRangeBounds<$t> for core::ops::Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoRangeBounds<$t> for core::ops::RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

range_bounds_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_bounds_float {
    ($($t:ty),* $(,)?) => {$(
        impl IntoRangeBounds<$t> for core::ops::Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start, self.end)
            }
        }
        impl IntoRangeBounds<$t> for core::ops::RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

range_bounds_float!(f32, f64);

pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-60..=60);
            assert!((-60..=60).contains(&w));
            let f = rng.gen_range(0.2..1.0);
            assert!((0.2..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
