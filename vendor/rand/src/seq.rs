//! Sequence sampling helpers (the `SliceRandom` subset we use).

use crate::{RngCore, UniformSample};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len() - 1)])
        }
    }
}
