//! Named generators. `StdRng` here is xoshiro256** — small, fast, and
//! (unlike the upstream `StdRng`) guaranteed stable across releases of
//! this vendored stub, which the simulations rely on for replayability.

use crate::{RngCore, SeedableRng, SplitMix64};

#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s == [0; 4] {
            let mut sm = SplitMix64::new(0xDEAD_BEEF);
            for slot in &mut s {
                *slot = sm.next();
            }
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
