//! Scoped threads with crossbeam 0.8's signature: the spawn closure
//! receives the scope again so spawned threads can spawn siblings, and
//! `scope` returns a `Result` that is `Err` when any spawned (and
//! un-joined) thread panicked.

use std::any::Any;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope propagates child panics by resuming the unwind
    // in the parent; catch it to surface crossbeam's Result API instead.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_locals() {
        let data = vec![1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
