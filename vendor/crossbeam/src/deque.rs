//! Work-stealing deques with the `crossbeam-deque` API surface: a global
//! [`Injector`] plus per-worker [`Worker`]/[`Stealer`] pairs. The upstream
//! crate uses lock-free Chase-Lev deques; this vendored stand-in keeps the
//! same types and methods on top of `Mutex<VecDeque>`, which is plenty for
//! the coarse-grained task payloads the workspace schedules (each queued
//! closure does milliseconds of record processing, so queue operations are
//! nowhere near the contention point).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and may be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// True when the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A FIFO queue owned by one worker thread. Cheap handle clones of the
/// underlying buffer are handed out as [`Stealer`]s.
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the queue.
    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    /// Pops the next task in FIFO order.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates a stealer handle onto this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A shared handle that steals from the front of a [`Worker`]'s queue.
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal one task.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A global FIFO injector queue shared by all workers.
#[derive(Debug)]
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    /// Attempts to steal one task from the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_fifo_and_stealable() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(w.len(), 2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn injector_round_trips_across_threads() {
        let inj = Arc::new(Injector::new());
        for i in 0..100 {
            inj.push(i);
        }
        let got: Vec<i32> = (0..4)
            .map(|_| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while let Steal::Success(v) = inj.steal() {
                        out.push(v);
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
