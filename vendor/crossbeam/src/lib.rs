//! Crossbeam-compatible scoped threads and channels, implemented on top
//! of `std::thread::scope` (stable since 1.63) and `std::sync::mpsc`.
//! Only the API surface the workspace uses is provided.

pub mod channel;
pub mod thread;
