//! Crossbeam-compatible scoped threads, channels and work-stealing
//! deques, implemented on top of `std::thread::scope` (stable since
//! 1.63), `std::sync::mpsc` and `Mutex<VecDeque>`. Only the API surface
//! the workspace uses is provided.

pub mod channel;
pub mod deque;
pub mod thread;
