//! MPSC channels with crossbeam's naming, over `std::sync::mpsc`.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

pub struct Sender<T>(mpsc::Sender<T>);

pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }

    pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
        self.0.try_iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

/// Bounded channel; senders block when full.
pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (SyncSender(tx), Receiver(rx))
}

pub struct SyncSender<T>(mpsc::SyncSender<T>);

impl<T> Clone for SyncSender<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> SyncSender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}
