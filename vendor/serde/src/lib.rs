//! A compact serde-compatible facade. Instead of the visitor-based
//! zero-copy architecture of real serde, values convert through an
//! intermediate [`Content`] tree; `serde_json` then renders or parses
//! that tree. The trait names and derive-macro spelling match upstream
//! so the workspace code is source-compatible.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing intermediate representation: a superset of the JSON
/// data model (map keys may be any content, not just strings).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

impl Content {
    pub fn map_get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find_map(|(k, v)| match k {
                Content::Str(s) if s == key => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Upstream-compatible module so bounds like `serde::de::DeserializeOwned`
/// resolve.
pub mod de {
    pub use crate::Error;

    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::Error;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

fn type_error<T>(expected: &str, got: &Content) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {got:?}")))
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return type_error("unsigned integer", other),
                };
                <$t>::try_from(v).map_err(|_| Error(format!("{v} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => {
                        i64::try_from(*v).map_err(|_| Error(format!("{v} out of range")))?
                    }
                    other => return type_error("integer", other),
                };
                <$t>::try_from(v).map_err(|_| Error(format!("{v} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => type_error("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_error("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(()),
            other => type_error("null", other),
        }
    }
}

// ------------------------------------------------------------ references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Rc::new)
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let items = Vec::<T>::from_content(c)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        // BTreeSet-like determinism is the caller's problem; HashSet
        // iteration order is whatever the hasher gives us.
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => type_error("sequence", other),
        }
    }
}

fn map_to_content<'a, K, V, I>(entries: I) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Content::Map(
        entries
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect(),
    )
}

fn map_from_content<K: Deserialize, V: Deserialize>(c: &Content) -> Result<Vec<(K, V)>, Error> {
    match c {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect(),
        // Maps with non-string keys may round-trip through JSON as a
        // sequence of [key, value] pairs.
        Content::Seq(items) => items
            .iter()
            .map(|item| match item {
                Content::Seq(pair) if pair.len() == 2 => {
                    Ok((K::from_content(&pair[0])?, V::from_content(&pair[1])?))
                }
                other => type_error("[key, value] pair", other),
            })
            .collect(),
        other => type_error("map", other),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match c {
                    Content::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => type_error("tuple sequence", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn tuple_keyed_map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert((1u64, "a".to_string()), vec![1u8, 2]);
        m.insert((2u64, "b".to_string()), vec![3]);
        let c = m.to_content();
        let back: BTreeMap<(u64, String), Vec<u8>> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn fixed_arrays_round_trip() {
        let a: [u8; 4] = [9, 8, 7, 6];
        let back: [u8; 4] = Deserialize::from_content(&a.to_content()).unwrap();
        assert_eq!(back, a);
    }
}
