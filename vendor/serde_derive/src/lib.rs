//! Derive macros for the vendored `serde` facade. Implemented directly
//! on `proc_macro` token trees (no `syn`/`quote` available offline): we
//! only need field names and variant shapes, never full type analysis.
//! Supports non-generic structs (named / tuple / unit) and enums with
//! unit, tuple and struct variants — exactly the shapes this workspace
//! derives. Generic parameters and `#[serde(...)]` attributes are
//! rejected at compile time rather than silently mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Unit,
    /// Tuple with this arity; arity 1 is serde's "newtype" (transparent).
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Input::Struct { name, shape } => gen_struct_serialize(name, shape),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Input::Struct { name, shape } => gen_struct_deserialize(name, shape),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            shape: parse_struct_body(tokens.get(i)),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Input::Enum {
                name,
                variants: parse_variants(body.stream()),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn parse_struct_body(token: Option<&TokenTree>) -> Shape {
    match token {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        None => Shape::Unit,
        other => panic!("serde_derive: unexpected struct body {other:?}"),
    }
}

/// Field names of a `{ a: T, b: U }` body. Types are consumed by
/// skipping to the next comma at angle-bracket depth zero; delimiter
/// groups are single opaque tokens so only `<`/`>` need tracking.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{field}`, found {other:?}"),
        }
        fields.push(field);
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit discriminants are not supported")
            }
            None => {}
            other => panic!("serde_derive: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ------------------------------------------------------------- codegen

fn gen_struct_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Content::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => named_fields_to_map(fields, "self."),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn named_fields_to_map(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::serde::Content::Str(::std::string::String::from(\"{f}\")), \
                 ::serde::Serialize::to_content(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
}

fn gen_struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!(
            "match c {{\n\
                 ::serde::Content::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::Error(format!(\n\
                     \"{name}: expected null, found {{other:?}}\"))),\n\
             }}"
        ),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match c {{\n\
                     ::serde::Content::Seq(items) if items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({items})),\n\
                     other => ::std::result::Result::Err(::serde::Error(format!(\n\
                         \"{name}: expected {n}-element sequence, found {{other:?}}\"))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => format!(
            "::std::result::Result::Ok({name} {{ {} }})",
            named_fields_from_map(name, fields)
        ),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn named_fields_from_map(context: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(\n\
                     c.map_get(\"{f}\").unwrap_or(&::serde::Content::Null))\n\
                     .map_err(|e| ::serde::Error(format!(\"{context}.{f}: {{}}\", e.0)))?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            let tag = format!("::serde::Content::Str(::std::string::String::from(\"{vname}\"))");
            match &v.shape {
                Shape::Unit => format!("{name}::{vname} => {tag},"),
                Shape::Tuple(1) => format!(
                    "{name}::{vname}(f0) => ::serde::Content::Map(vec![({tag}, \
                     ::serde::Serialize::to_content(f0))]),"
                ),
                Shape::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                        .collect();
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Content::Map(vec![({tag}, \
                         ::serde::Content::Seq(vec![{items}]))]),",
                        binds = binds.join(", "),
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let binds = fields.join(", ");
                    let payload = named_fields_to_map(fields, "");
                    format!(
                        "{name}::{vname} {{ {binds} }} => \
                         ::serde::Content::Map(vec![({tag}, {payload})]),"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();

    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => None,
                Shape::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(payload)\
                     .map_err(|e| ::serde::Error(format!(\"{name}::{vname}: {{}}\", e.0)))?)),"
                )),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => match payload {{\n\
                             ::serde::Content::Seq(items) if items.len() == {n} =>\n\
                                 ::std::result::Result::Ok({name}::{vname}({items})),\n\
                             other => ::std::result::Result::Err(::serde::Error(format!(\n\
                                 \"{name}::{vname}: expected {n}-element sequence, found {{other:?}}\"))),\n\
                         }},",
                        items = items.join(", ")
                    ))
                }
                Shape::Named(fields) => {
                    let field_exprs = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(\n\
                                     payload.map_get(\"{f}\").unwrap_or(&::serde::Content::Null))\n\
                                     .map_err(|e| ::serde::Error(format!(\"{name}::{vname}.{f}: {{}}\", e.0)))?,"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join("\n");
                    Some(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {field_exprs} }}),"
                    ))
                }
            }
        })
        .collect();

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match c {{\n\
                     ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error(format!(\n\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, payload) = &entries[0];\n\
                         let _ = payload;\n\
                         let tag = match key {{\n\
                             ::serde::Content::Str(s) => s.as_str(),\n\
                             other => return ::std::result::Result::Err(::serde::Error(format!(\n\
                                 \"{name}: variant tag must be a string, found {{other:?}}\"))),\n\
                         }};\n\
                         match tag {{\n\
                             {payload_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error(format!(\n\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error(format!(\n\
                         \"{name}: expected variant tag, found {{other:?}}\"))),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        payload_arms = payload_arms.join("\n"),
    )
}
