//! Minimal `Bytes`: a cheaply-clonable immutable byte buffer. The
//! workspace declares the dependency but currently touches none of the
//! richer API, so only the core type is provided.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}
